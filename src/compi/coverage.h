// Cross-process branch-coverage accounting ("all recorders", paper §III).
#pragma once

#include <cstddef>
#include <vector>

#include "runtime/branch_table.h"
#include "runtime/test_log.h"

namespace compi {

/// Per-function coverage summary (for reports: where do the uncovered
/// branches live?).
struct FunctionCoverage {
  std::string function;
  std::size_t covered_branches = 0;
  std::size_t total_branches = 0;
  bool encountered = false;  // counted as reachable (paper's estimate)
};

/// Accumulates branch coverage across every rank of every iteration and
/// derives the paper's coverage metrics:
///  * covered branches — branches executed at least once by ANY process;
///  * reachable branches — 2x the number of sites in functions encountered
///    during testing (the estimation rule of paper Table III / [8]);
///  * coverage rate — covered / reachable.
class CoverageTracker {
 public:
  explicit CoverageTracker(const rt::BranchTable& table);

  /// Unions one rank's coverage bitmap into the campaign totals.
  void merge(const rt::CoverageBitmap& covered);

  [[nodiscard]] std::size_t covered_branches() const {
    return merged_.count();
  }
  [[nodiscard]] std::size_t total_branches() const {
    return table_->num_branches();
  }
  [[nodiscard]] std::size_t reachable_branches() const;
  [[nodiscard]] double rate() const;

  [[nodiscard]] const rt::CoverageBitmap& bitmap() const { return merged_; }
  [[nodiscard]] bool branch_covered(sym::BranchId b) const {
    return merged_.covered(b);
  }

  /// Coverage broken down by function, in the table's function order.
  [[nodiscard]] std::vector<FunctionCoverage> per_function() const;

 private:
  const rt::BranchTable* table_;
  rt::CoverageBitmap merged_;
  std::vector<std::uint8_t> function_seen_;
  std::vector<std::size_t> sites_per_function_;
};

}  // namespace compi
