#include "compi/ledger.h"

#include <algorithm>
#include <istream>
#include <numeric>
#include <ostream>
#include <sstream>

#include "compi/checkpoint.h"

namespace compi {

std::uint64_t BranchAttribution::total_hits() const {
  return std::accumulate(hits_per_rank.begin(), hits_per_rank.end(),
                         std::uint64_t{0});
}

CoverageLedger::CoverageLedger(const rt::BranchTable& table)
    : attribution_(table.num_branches()),
      near_misses_(table.num_branches()) {}

void CoverageLedger::record_run(const RunContext& ctx,
                                const minimpi::RunResult& run) {
  // Harvested ids form a small sorted probe set (the supervisor emits them
  // in id order); binary search keeps the per-branch test cheap.
  const std::vector<sym::BranchId>* harvested =
      ctx.harvested != nullptr && !ctx.harvested->empty() ? ctx.harvested
                                                          : nullptr;
  for (std::size_t r = 0; r < run.ranks.size(); ++r) {
    const rt::CoverageBitmap& covered = run.ranks[r].log.covered;
    const std::size_t n = std::min(covered.size(), attribution_.size());
    for (std::size_t b = 0; b < n; ++b) {
      if (!covered.covered(static_cast<sym::BranchId>(b))) continue;
      BranchAttribution& a = attribution_[b];
      if (!a.covered()) {
        a.first_iteration = ctx.iteration;
        a.first_focus = ctx.focus;
        a.first_nprocs = ctx.nprocs;
        a.first_rank = static_cast<int>(r);
        a.first_harvested =
            harvested != nullptr &&
            std::binary_search(harvested->begin(), harvested->end(),
                               static_cast<sym::BranchId>(b));
        a.first_interleaving = ctx.interleaving;
        if (ctx.inputs != nullptr) a.first_inputs = *ctx.inputs;
        ++covered_;
        // Coverage settles the near miss; drop the stale constraint.
        near_misses_[b].reset();
      }
      if (a.hits_per_rank.size() <= r) a.hits_per_rank.resize(r + 1, 0);
      ++a.hits_per_rank[r];
    }
  }
}

void CoverageLedger::record_solve_failure(sym::BranchId branch, int iteration,
                                          const std::string& constraint,
                                          bool budget_exhausted) {
  const auto b = static_cast<std::size_t>(branch);
  if (b >= attribution_.size() || attribution_[b].covered()) return;
  std::optional<NearMiss>& miss = near_misses_[b];
  if (!miss) miss.emplace();
  ++miss->attempts;
  miss->last_iteration = iteration;
  miss->budget_exhausted = budget_exhausted;
  miss->constraint = constraint;
}

std::vector<std::size_t> CoverageLedger::branches_per_rank() const {
  std::vector<std::size_t> out;
  for (const BranchAttribution& a : attribution_) {
    for (std::size_t r = 0; r < a.hits_per_rank.size(); ++r) {
      if (a.hits_per_rank[r] == 0) continue;
      if (out.size() <= r) out.resize(r + 1, 0);
      ++out[r];
    }
  }
  return out;
}

std::vector<sym::BranchId> CoverageLedger::nearest_misses() const {
  std::vector<sym::BranchId> out;
  for (std::size_t b = 0; b < near_misses_.size(); ++b) {
    if (near_misses_[b].has_value() && !attribution_[b].covered()) {
      out.push_back(static_cast<sym::BranchId>(b));
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [&](sym::BranchId x, sym::BranchId y) {
                     return near_misses_[static_cast<std::size_t>(x)]
                                ->attempts >
                            near_misses_[static_cast<std::size_t>(y)]
                                ->attempts;
                   });
  return out;
}

// ---- persistence ----

void CoverageLedger::write(std::ostream& os) const {
  os << "ledger " << attribution_.size() << ' ' << covered_ << '\n';
  for (std::size_t b = 0; b < attribution_.size(); ++b) {
    const BranchAttribution& a = attribution_[b];
    if (a.covered()) {
      os << "hit " << b << ' ' << a.first_iteration << ' ' << a.first_focus
         << ' ' << a.first_nprocs << ' ' << a.first_rank << ' '
         << (a.first_harvested ? 1 : 0) << ' ' << a.first_interleaving
         << ' ' << a.hits_per_rank.size();
      for (std::uint32_t h : a.hits_per_rank) os << ' ' << h;
      os << ' ' << a.first_inputs.size() << '\n';
      for (const auto& [name, value] : a.first_inputs) {
        os << value << ' ' << ckpt::escape(name) << '\n';
      }
    }
    const std::optional<NearMiss>& miss = near_misses_[b];
    if (miss.has_value() && !a.covered()) {
      os << "miss " << b << ' ' << miss->attempts << ' '
         << miss->last_iteration << ' ' << (miss->budget_exhausted ? 1 : 0)
         << ' ' << ckpt::escape(miss->constraint) << '\n';
    }
  }
  os << "ledger_end\n";
}

bool CoverageLedger::read(std::istream& is) {
  std::string tok;
  if (!(is >> tok) || tok != "ledger") return false;
  std::size_t branches = 0, covered = 0;
  if (!(is >> branches >> covered) || branches != attribution_.size()) {
    return false;
  }
  std::vector<BranchAttribution> attribution(attribution_.size());
  std::vector<std::optional<NearMiss>> misses(near_misses_.size());
  std::size_t covered_seen = 0;
  const auto read_tail = [&is] {
    std::string line;
    if (is.peek() == ' ') is.get();
    std::getline(is, line);
    return line;
  };
  for (;;) {
    if (!(is >> tok)) return false;
    if (tok == "ledger_end") break;
    std::size_t b = 0;
    if (!(is >> b) || b >= attribution.size()) return false;
    if (tok == "hit") {
      BranchAttribution& a = attribution[b];
      int harvested = 0;
      std::size_t nranks = 0;
      if (!(is >> a.first_iteration >> a.first_focus >> a.first_nprocs >>
            a.first_rank >> harvested >> a.first_interleaving >> nranks)) {
        return false;
      }
      a.first_harvested = harvested != 0;
      a.hits_per_rank.resize(nranks);
      for (std::uint32_t& h : a.hits_per_rank) {
        if (!(is >> h)) return false;
      }
      std::size_t ninputs = 0;
      if (!(is >> ninputs)) return false;
      for (std::size_t i = 0; i < ninputs; ++i) {
        std::int64_t value = 0;
        if (!(is >> value)) return false;
        a.first_inputs[ckpt::unescape(read_tail())] = value;
      }
      ++covered_seen;
    } else if (tok == "miss") {
      NearMiss miss;
      int budget = 0;
      if (!(is >> miss.attempts >> miss.last_iteration >> budget)) {
        return false;
      }
      miss.budget_exhausted = budget != 0;
      miss.constraint = ckpt::unescape(read_tail());
      misses[b] = std::move(miss);
    } else {
      return false;
    }
  }
  if (covered_seen != covered) return false;
  attribution_ = std::move(attribution);
  near_misses_ = std::move(misses);
  covered_ = covered;
  return true;
}

bool CoverageLedger::merge(std::istream& is) {
  CoverageLedger other(*this);
  // Reuse read() for parsing by round-tripping through a scratch ledger of
  // the same shape; read() validates the branch count for us.
  other.attribution_.assign(attribution_.size(), BranchAttribution{});
  other.near_misses_.assign(near_misses_.size(), std::nullopt);
  other.covered_ = 0;
  if (!other.read(is)) return false;

  for (std::size_t b = 0; b < attribution_.size(); ++b) {
    BranchAttribution& mine = attribution_[b];
    BranchAttribution& theirs = other.attribution_[b];
    if (theirs.covered()) {
      if (!mine.covered()) {
        mine = std::move(theirs);
        ++covered_;
        near_misses_[b].reset();
      } else {
        // Both sides covered it: earlier discovery wins the attribution
        // (ties keep ours — shard iteration ordinals are local clocks, so
        // this is a stable heuristic, not a total order).
        if (theirs.first_iteration < mine.first_iteration) {
          std::vector<std::uint32_t> hits = std::move(mine.hits_per_rank);
          mine = std::move(theirs);
          std::swap(mine.hits_per_rank, hits);
          mine.hits_per_rank.resize(
              std::max(mine.hits_per_rank.size(), hits.size()), 0);
          for (std::size_t r = 0; r < hits.size(); ++r) {
            mine.hits_per_rank[r] = std::max(mine.hits_per_rank[r], hits[r]);
          }
        } else {
          if (mine.hits_per_rank.size() < theirs.hits_per_rank.size()) {
            mine.hits_per_rank.resize(theirs.hits_per_rank.size(), 0);
          }
          for (std::size_t r = 0; r < theirs.hits_per_rank.size(); ++r) {
            mine.hits_per_rank[r] =
                std::max(mine.hits_per_rank[r], theirs.hits_per_rank[r]);
          }
        }
      }
    }
    if (!attribution_[b].covered() && other.near_misses_[b].has_value()) {
      std::optional<NearMiss>& miss = near_misses_[b];
      if (!miss.has_value() ||
          other.near_misses_[b]->attempts > miss->attempts) {
        miss = std::move(other.near_misses_[b]);
      }
    }
  }
  return true;
}

std::string csv_quote(const std::string& cell) {
  if (cell.find_first_of(",\"\n\r") == std::string::npos) return cell;
  std::string out;
  out.reserve(cell.size() + 2);
  out.push_back('"');
  for (char c : cell) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

void CoverageLedger::write_csv(std::ostream& os,
                               const rt::BranchTable& table) const {
  // first_interleaving is appended at the END so positional readers of the
  // older 17-column layout (cells 0..16) keep working.
  os << "branch,site,function,arm,covered,first_iteration,first_focus,"
        "first_nprocs,first_rank,first_harvested,total_hits,hits_per_rank,"
        "miss_attempts,miss_last_iteration,miss_budget_exhausted,"
        "nearest_miss_constraint,first_inputs,first_interleaving\n";
  for (std::size_t b = 0; b < attribution_.size(); ++b) {
    const BranchAttribution& a = attribution_[b];
    const sym::SiteId site = sym::site_of(static_cast<sym::BranchId>(b));
    os << b << ',' << csv_quote(table.site(site).name) << ','
       << csv_quote(table.site(site).function) << ','
       << (sym::direction_of(static_cast<sym::BranchId>(b)) ? 'T' : 'F')
       << ',' << (a.covered() ? 1 : 0) << ',';
    if (a.covered()) {
      os << a.first_iteration << ',' << a.first_focus << ','
         << a.first_nprocs << ',' << a.first_rank << ','
         << (a.first_harvested ? 1 : 0) << ',' << a.total_hits() << ',';
      std::string per_rank;
      for (std::size_t r = 0; r < a.hits_per_rank.size(); ++r) {
        if (r > 0) per_rank.push_back(':');
        per_rank += std::to_string(a.hits_per_rank[r]);
      }
      os << per_rank << ',';
    } else {
      os << ",,,,,0,,";
    }
    const std::optional<NearMiss>& miss = near_misses_[b];
    if (miss.has_value() && !a.covered()) {
      os << miss->attempts << ',' << miss->last_iteration << ','
         << (miss->budget_exhausted ? 1 : 0) << ','
         << csv_quote(miss->constraint) << ',';
    } else {
      os << ",,,,";
    }
    std::string inputs;
    for (const auto& [name, value] : a.first_inputs) {
      if (!inputs.empty()) inputs.push_back(' ');
      inputs += name + "=" + std::to_string(value);
    }
    os << csv_quote(inputs) << ',';
    if (a.covered() && a.first_interleaving >= 0) {
      os << a.first_interleaving;
    }
    os << '\n';
  }
}

}  // namespace compi
