// Coverage attribution ledger: which branch was earned by what, and when.
//
// The coverage tracker answers "how many branches" — this ledger answers
// the questions a plateaued campaign raises (paper Tables 4-6 are
// coverage-over-iterations curves; MPISE-style per-path diagnostics need
// the provenance behind them):
//  * For every covered branch: the iteration that first hit it, the
//    planned input assignment / focus / world size of that run, the rank
//    that actually executed it, and whether the hit was recovered from the
//    sandbox's MAP_SHARED harvest after the child died.
//  * Per-rank hit counts: how many (iteration, rank) pairs covered each
//    branch — the data behind `--explain`'s per-rank skew table.
//  * For never-taken branches: the nearest miss — the negated constraint
//    the solver most recently failed to satisfy while trying to steer
//    execution into that branch, and how often it was attempted.
//
// The ledger is driver state, persisted inside the campaign checkpoint
// (format v4) so attribution survives kill + --resume, and exported as
// <log_dir>/ledger.csv for `--explain` and external tooling.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "minimpi/launcher.h"
#include "runtime/branch_table.h"

namespace compi {

/// Attribution of one branch.  Default-constructed = never taken.
struct BranchAttribution {
  /// Iteration of the first hit; -1 while never taken.
  int first_iteration = -1;
  /// Focus rank / world size the discovering run was planned with.
  int first_focus = -1;
  int first_nprocs = 0;
  /// Global rank whose log (or harvest stamp) first contained the branch.
  int first_rank = -1;
  /// The first hit was recovered from the sandbox coverage harvest of a
  /// child that died before delivering its logs.
  bool first_harvested = false;
  /// Interleaving id of the discovering run when the branch was first
  /// reached under a reordered wildcard matching (--explore-matchings);
  /// -1 for ordinary input-driven first hits.
  std::int64_t first_interleaving = -1;
  /// Named planned assignment of the discovering run.
  std::map<std::string, std::int64_t> first_inputs;
  /// hits_per_rank[r] = iterations in which rank r covered this branch
  /// (bitmaps record presence per run, not execution counts).
  std::vector<std::uint32_t> hits_per_rank;

  [[nodiscard]] bool covered() const { return first_iteration >= 0; }
  [[nodiscard]] std::uint64_t total_hits() const;
};

/// The solver near-miss record of a never-taken branch.
struct NearMiss {
  /// Failed negation attempts targeting this branch.
  int attempts = 0;
  int last_iteration = -1;
  /// The last failure was a node-budget exhaustion (unknown), not UNSAT.
  bool budget_exhausted = false;
  /// Rendered form of the negated constraint that failed to solve.
  std::string constraint;
};

class CoverageLedger {
 public:
  explicit CoverageLedger(const rt::BranchTable& table);

  /// Context of one executed test, shared by every branch it attributes.
  struct RunContext {
    int iteration = 0;
    int nprocs = 0;
    int focus = 0;
    /// Planned assignment by variable name (copied into first-hit records).
    const std::map<std::string, std::int64_t>* inputs = nullptr;
    /// Branch ids whose coverage came from the sandbox harvest map instead
    /// of a delivered rank log (nullptr/empty for in-process runs).
    const std::vector<sym::BranchId>* harvested = nullptr;
    /// Interleaving id when the run replayed a reordered matching; -1
    /// otherwise.
    std::int64_t interleaving = -1;
  };

  /// Attributes one run's coverage: walks every rank's covered bitmap and
  /// updates first-hit records and per-rank hit counts.
  void record_run(const RunContext& ctx, const minimpi::RunResult& run);

  /// Records a failed solve whose negated constraint targeted `branch`
  /// (the other arm of a path entry).  Covered branches are ignored —
  /// a near miss only matters while the branch is still never-taken.
  void record_solve_failure(sym::BranchId branch, int iteration,
                            const std::string& constraint,
                            bool budget_exhausted);

  [[nodiscard]] std::size_t num_branches() const {
    return attribution_.size();
  }
  [[nodiscard]] const BranchAttribution& attribution(sym::BranchId b) const {
    return attribution_[static_cast<std::size_t>(b)];
  }
  [[nodiscard]] const std::optional<NearMiss>& near_miss(
      sym::BranchId b) const {
    return near_misses_[static_cast<std::size_t>(b)];
  }
  [[nodiscard]] std::size_t covered_branches() const { return covered_; }

  /// branches_per_rank()[r] = distinct branches rank r has ever covered
  /// (the per-rank skew summary).
  [[nodiscard]] std::vector<std::size_t> branches_per_rank() const;

  /// Never-taken branches that have at least one recorded near miss,
  /// ordered by attempt count (most-tried first).
  [[nodiscard]] std::vector<sym::BranchId> nearest_misses() const;

  // ---- persistence (checkpoint v4 embeds this; ledger.csv exports it) ----

  /// Line-oriented snapshot in the checkpoint dialect.
  void write(std::ostream& os) const;
  /// Restores a write() snapshot.  False on parse errors or a branch-count
  /// mismatch (the caller then keeps the fresh, empty ledger).
  [[nodiscard]] bool read(std::istream& is);

  /// Merges another write() snapshot into this ledger (the coordinator's
  /// delta-upload path).  Branches only the other side covered adopt its
  /// attribution wholesale; branches covered by both keep the EARLIER
  /// first hit and element-wise-max per-rank hit counts (deltas carry full
  /// cumulative state, so max — not sum — keeps replays idempotent).
  /// Near misses keep the record with more attempts.  False (this ledger
  /// unchanged) on parse errors or a branch-count mismatch.
  [[nodiscard]] bool merge(std::istream& is);

  /// CSV export: one row per branch site arm with attribution, per-rank
  /// hit counts, and near-miss columns.  `table` supplies site names.
  void write_csv(std::ostream& os, const rt::BranchTable& table) const;

 private:
  std::vector<BranchAttribution> attribution_;
  std::vector<std::optional<NearMiss>> near_misses_;
  std::size_t covered_ = 0;
};

/// Escapes one CSV cell: doubles internal quotes and wraps in quotes when
/// the value contains a comma, quote, or newline (RFC 4180 style).
[[nodiscard]] std::string csv_quote(const std::string& cell);

}  // namespace compi
