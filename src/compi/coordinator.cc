#include "compi/coordinator.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "compi/checkpoint.h"
#include "compi/coord_protocol.h"
#include "compi/coverage.h"
#include "compi/driver_internal.h"
#include "compi/ledger.h"
#include "compi/session.h"
#include "obs/diagnosis.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "obs/status.h"
#include "obs/trace.h"
#include "serve/control_plane.h"
#include "serve/frame.h"
#include "serve/msg_server.h"

namespace compi {

namespace {

using Clock = std::chrono::steady_clock;

/// One outstanding lease (the in-memory form of ckpt::CoordLease plus its
/// deadline, which is never persisted — restored leases are reclaimed).
struct LiveLease {
  std::string shard;
  int remaining = 0;
  Clock::time_point deadline;
};

/// One per-shard telemetry reading in the coordinator-relative clock; the
/// fleet view derives live rates and lag sparklines from a short ring of
/// these.
struct FleetSample {
  double at = 0.0;  ///< coordinator elapsed seconds at receipt
  std::int64_t iterations = 0;
  std::int64_t covered = 0;
};

/// Telemetry samples retained per shard (~2 minutes at 1 Hz deltas).
constexpr std::size_t kFleetSampleCap = 128;

struct ShardState {
  std::string name;   ///< display name (key without the token)
  int ordinal = 0;
  bool connected = false;
  std::uint64_t conn = 0;
  std::int64_t iterations_completed = 0;
  std::size_t covered_cursor = 0;
  std::size_t iseen_cursor = 0;
  Clock::time_point last_seen;
  /// Latest snapshot piggybacked on this shard's deltas/heartbeats
  /// (valid=false until the first frame carrying one arrives).
  coord::ShardTelemetry telemetry;
  std::deque<FleetSample> samples;
};

[[nodiscard]] std::int64_t wall_clock_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

/// Iterations/second over the shard's retained sample window; 0 until two
/// samples with distinct timestamps exist.
[[nodiscard]] double shard_rate(const ShardState& sh) {
  if (sh.samples.size() < 2) return 0.0;
  const FleetSample& a = sh.samples.front();
  const FleetSample& b = sh.samples.back();
  const double dt = b.at - a.at;
  if (dt <= 0.0) return 0.0;
  return static_cast<double>(b.iterations - a.iterations) / dt;
}

}  // namespace

struct Coordinator::Impl {
  TargetInfo target;
  CoordinatorOptions opts;

  mutable std::mutex mu;
  std::condition_variable cv;

  // Merged global state (guarded by mu).
  CoverageTracker coverage;
  std::vector<sym::BranchId> covered_log;  ///< append order, cursor space
  std::unordered_set<std::uint64_t> iseen;
  std::vector<std::uint64_t> iseen_log;
  std::vector<BugRecord> bugs;
  CoverageLedger ledger;

  // Lease and shard bookkeeping (guarded by mu).
  std::int64_t completed = 0;
  std::uint64_t next_lease_id = 1;
  int next_ordinal = 0;
  std::map<std::uint64_t, LiveLease> leases;
  std::map<std::string, ShardState> shards;  ///< by shard key
  std::unordered_map<std::uint64_t, std::string> conn_to_shard;

  // Accounting surfaced through the accessors and /metrics.
  std::size_t joined = 0;
  std::size_t lost = 0;
  std::size_t reclaimed = 0;

  // Persistence + observability.
  std::unique_ptr<SessionWriter> session;
  obs::Journal journal;
  std::shared_ptr<obs::StatusBoard> board;
  serve::MsgServer server;
  serve::ControlPlane control_plane;
  Clock::time_point start_time = Clock::now();
  int deltas_since_checkpoint = 0;
  Clock::time_point last_checkpoint = Clock::now();
  bool dirty = false;

  /// Fleet stall diagnosis, fed ~1 Hz from on_tick (declared after the
  /// journal it writes transitions into).
  obs::DiagnosisEngine diagnosis_engine{&journal};
  Clock::time_point last_diagnosis = Clock::now();

  obs::Counter& m_joined = obs::registry().counter(
      "compi_shards_joined_total", "Shard join handshakes accepted");
  obs::Counter& m_lost = obs::registry().counter(
      "compi_shards_lost_total",
      "Shards declared lost (broken connection or missed heartbeats)");
  obs::Counter& m_reclaimed = obs::registry().counter(
      "compi_leases_reclaimed_total",
      "Leases expired or reclaimed from lost shards");
  obs::Gauge& m_connected = obs::registry().gauge(
      "compi_shards_connected", "Shards currently connected");
  obs::Gauge& m_completed = obs::registry().gauge(
      "compi_coord_iterations_completed",
      "Global iterations merged across all shards");

  Impl(const TargetInfo& t, CoordinatorOptions o)
      : target(t),
        opts(std::move(o)),
        coverage(*t.table),
        ledger(*t.table) {}

  [[nodiscard]] double elapsed() const {
    return std::chrono::duration<double>(Clock::now() - start_time).count();
  }

  [[nodiscard]] std::int64_t outstanding_locked() const {
    std::int64_t sum = 0;
    for (const auto& [id, l] : leases) sum += l.remaining;
    return sum;
  }

  [[nodiscard]] bool done_locked() const {
    return completed >= opts.budget;
  }

  /// Per-shard heartbeat gauge, named by the shard's display name
  /// (labeled_name escapes it — shard names are operator-chosen strings).
  void touch_heartbeat_gauge(const ShardState& sh) {
    obs::registry()
        .gauge(obs::labeled_name("compi_shard_last_heartbeat_seconds",
                                 "shard", sh.name),
               "Coordinator-relative time of each shard's last frame")
        .set(static_cast<std::int64_t>(elapsed()));
  }

  /// Absorbs a telemetry snapshot piggybacked on a delta or heartbeat:
  /// latest reading, the rate-ring sample, and the shard-labeled gauges.
  void note_telemetry_locked(ShardState& sh,
                             const coord::ShardTelemetry& t) {
    if (!t.valid) return;
    sh.telemetry = t;
    sh.samples.push_back(FleetSample{elapsed(), t.iterations, t.covered});
    if (sh.samples.size() > kFleetSampleCap) sh.samples.pop_front();
    auto& reg = obs::registry();
    reg.gauge(obs::labeled_name("compi_shard_iterations", "shard", sh.name),
              "Iterations completed per shard (self-reported)")
        .set(t.iterations);
    reg.gauge(
           obs::labeled_name("compi_shard_covered_branches", "shard",
                             sh.name),
           "Covered branches per shard (self-reported, pre-merge)")
        .set(t.covered);
    reg.gauge(obs::labeled_name("compi_shard_frontier_depth", "shard",
                                sh.name),
              "Negation frontier depth per shard (self-reported)")
        .set(t.frontier_depth);
  }

  /// Aggregated fleet view for the stall classifier.  frontier_depth stays
  /// -1 (unknown) until some shard reports telemetry — a coordinator in
  /// front of telemetry-less shards must not read as frontier-starved.
  [[nodiscard]] obs::DiagnosisInput diagnosis_input_locked() const {
    obs::DiagnosisInput in;
    in.elapsed_seconds = elapsed();
    in.plateau_window_seconds = opts.stall_window_seconds;
    in.shards_joined = static_cast<std::int64_t>(joined);
    in.leases_reclaimed = static_cast<std::int64_t>(reclaimed);
    const auto now = Clock::now();
    for (const auto& [key, sh] : shards) {
      if (sh.telemetry.valid) {
        if (in.frontier_depth < 0) in.frontier_depth = 0;
        in.frontier_depth += sh.telemetry.frontier_depth;
        in.interleavings_pending += sh.telemetry.interleavings_pending;
        in.solver_sat += sh.telemetry.solver_sat;
        in.solver_unsat += sh.telemetry.solver_unsat;
        in.solver_budget += sh.telemetry.solver_budget;
      }
      obs::ShardProgress p;
      p.name = sh.name;
      p.rate = shard_rate(sh);
      p.connected = sh.connected;
      p.since_last_seen =
          std::chrono::duration<double>(now - sh.last_seen).count();
      in.shards.push_back(std::move(p));
    }
    return in;
  }

  /// Re-runs the classifier (at most ~1 Hz unless forced) and republishes
  /// the verdict on the status board.
  void update_diagnosis_locked(bool force) {
    const auto now = Clock::now();
    if (!force && now - last_diagnosis < std::chrono::seconds(1)) return;
    last_diagnosis = now;
    const obs::Diagnosis diag = diagnosis_engine.update(
        diagnosis_input_locked(),
        static_cast<std::int64_t>(coverage.covered_branches()),
        static_cast<int>(std::min<std::int64_t>(completed, INT32_MAX)));
    if (board != nullptr) {
      board->set_diagnosis(obs::to_string(diag.kind), diag.detail,
                           diag.stalled_seconds);
    }
  }

  /// The /fleet document: coordinator totals plus one nested object per
  /// shard, in the same flat JSON dialect as /status (no arrays) so
  /// `compi top --fleet` parses it with the journal's object parser.
  [[nodiscard]] std::string fleet_json_locked() const {
    std::string out;
    obs::JsonWriter w(out);
    w.field("budget", opts.budget);
    w.field("completed", completed);
    w.field("elapsed_seconds", elapsed());
    w.field("shards_connected",
            static_cast<std::int64_t>(connected_count_locked()));
    w.field("shards_joined", static_cast<std::int64_t>(joined));
    w.field("shards_lost", static_cast<std::int64_t>(lost));
    w.field("leases_reclaimed", static_cast<std::int64_t>(reclaimed));
    w.field("covered_branches",
            static_cast<std::int64_t>(coverage.covered_branches()));
    w.field("bugs", static_cast<std::int64_t>(bugs.size()));
    const obs::Diagnosis& diag = diagnosis_engine.current();
    w.field("diagnosis_kind", obs::to_string(diag.kind));
    w.field("diagnosis_detail", diag.detail);
    const auto now = Clock::now();
    // Stable order: by join ordinal, so shard_N indexes don't shuffle
    // between polls.
    std::vector<const ShardState*> ordered;
    ordered.reserve(shards.size());
    for (const auto& [key, sh] : shards) ordered.push_back(&sh);
    std::sort(ordered.begin(), ordered.end(),
              [](const ShardState* a, const ShardState* b) {
                return a->ordinal < b->ordinal;
              });
    for (std::size_t i = 0; i < ordered.size(); ++i) {
      const ShardState& sh = *ordered[i];
      std::int64_t lease_count = 0;
      std::int64_t lease_remaining = 0;
      for (const auto& [id, l] : leases) {
        // Lease keys are full shard keys; resolve through the map to
        // compare against this shard.
        const auto it = shards.find(l.shard);
        if (it != shards.end() && &it->second == &sh) {
          ++lease_count;
          lease_remaining += l.remaining;
        }
      }
      w.begin_object("shard_" + std::to_string(i));
      w.field("name", sh.name);
      w.field("ordinal", static_cast<std::int64_t>(sh.ordinal));
      w.field_bool("connected", sh.connected);
      w.field("since_last_seen",
              std::chrono::duration<double>(now - sh.last_seen).count());
      // Prefer the telemetry snapshot (piggybacked at heartbeat cadence)
      // over the delta-merged count: the dashboard should show where the
      // shard IS, not where its last merge left it.
      w.field("iterations", sh.telemetry.valid ? sh.telemetry.iterations
                                               : sh.iterations_completed);
      w.field("rate", shard_rate(sh));
      w.field("leases", lease_count);
      w.field("lease_remaining", lease_remaining);
      w.field_bool("telemetry", sh.telemetry.valid);
      if (sh.telemetry.valid) {
        const coord::ShardTelemetry& t = sh.telemetry;
        w.field("covered", t.covered);
        w.field("frontier_depth", t.frontier_depth);
        w.field("interleavings_pending", t.interleavings_pending);
        w.field("solver_sat", t.solver_sat);
        w.field("solver_unsat", t.solver_unsat);
        w.field("solver_budget", t.solver_budget);
        w.field("exec_us", t.exec_us);
        w.field("solve_us", t.solve_us);
      }
      // Lag sparkline data: "elapsed:iterations" pairs, the same encoding
      // trick the status heartbeat uses for its coverage timeline.
      std::string spark;
      for (const FleetSample& s : sh.samples) {
        if (!spark.empty()) spark.push_back(' ');
        spark += std::to_string(static_cast<std::int64_t>(s.at));
        spark.push_back(':');
        spark += std::to_string(s.iterations);
      }
      w.field("timeline", spark);
      w.end_object();
    }
    w.finish();
    return out;
  }

  void update_board_locked() {
    if (board == nullptr) return;
    board->record_iteration(
        static_cast<int>(std::min<std::int64_t>(completed, INT32_MAX)),
        coverage.covered_branches(), bugs.size(), elapsed(), 0, 0, "ok", 0);
  }

  /// Renews every lease held by `key` (any frame from a shard counts as a
  /// heartbeat) and stamps its last-seen time.
  void renew_locked(ShardState& sh, const std::string& key) {
    sh.last_seen = Clock::now();
    const auto deadline =
        sh.last_seen + std::chrono::milliseconds(opts.lease_ttl_ms);
    for (auto& [id, l] : leases) {
      if (l.shard == key) l.deadline = deadline;
    }
    touch_heartbeat_gauge(sh);
  }

  void reclaim_lease_locked(std::uint64_t id, const char* reason) {
    const auto it = leases.find(id);
    if (it == leases.end()) return;
    obs::instant(obs::Cat::kCoord, "lease_reclaimed", "lease",
                 static_cast<std::int64_t>(id));
    obs::JournalEvent(journal, "lease_reclaimed",
                      static_cast<int>(std::min<std::int64_t>(completed,
                                                              INT32_MAX)))
        .num("lease", static_cast<std::int64_t>(id))
        .num("remaining", it->second.remaining)
        .str("shard", it->second.shard)
        .str("reason", reason);
    leases.erase(it);
    ++reclaimed;
    m_reclaimed.inc();
    dirty = true;
    cv.notify_all();
  }

  void reclaim_shard_leases_locked(const std::string& key,
                                   const char* reason) {
    std::vector<std::uint64_t> ids;
    for (const auto& [id, l] : leases) {
      if (l.shard == key) ids.push_back(id);
    }
    for (std::uint64_t id : ids) reclaim_lease_locked(id, reason);
  }

  void mark_lost_locked(ShardState& sh, const std::string& key,
                        const char* reason) {
    if (!sh.connected) return;
    sh.connected = false;
    sh.conn = 0;
    ++lost;
    m_lost.inc();
    m_connected.set(static_cast<std::int64_t>(connected_count_locked()));
    obs::JournalEvent(journal, "shard_lost",
                      static_cast<int>(std::min<std::int64_t>(completed,
                                                              INT32_MAX)))
        .str("shard", key)
        .str("reason", reason);
    reclaim_shard_leases_locked(key, reason);
  }

  [[nodiscard]] std::size_t connected_count_locked() const {
    std::size_t n = 0;
    for (const auto& [key, sh] : shards) n += sh.connected ? 1 : 0;
    return n;
  }

  /// Covered-log suffix past the shard's cursors; advances the cursors.
  [[nodiscard]] coord::CoverageSync sync_for_locked(ShardState& sh) {
    obs::ObsSpan span(obs::Cat::kCoord, "broadcast", "covered_from",
                      static_cast<std::int64_t>(sh.covered_cursor));
    coord::CoverageSync sync;
    sync.completed = completed;
    sync.budget = opts.budget;
    sync.covered.assign(covered_log.begin() +
                            static_cast<std::ptrdiff_t>(sh.covered_cursor),
                        covered_log.end());
    sh.covered_cursor = covered_log.size();
    sync.interleaving_seen.assign(
        iseen_log.begin() + static_cast<std::ptrdiff_t>(sh.iseen_cursor),
        iseen_log.end());
    sh.iseen_cursor = iseen_log.size();
    return sync;
  }

  void merge_delta_locked(ShardState& sh, const std::string& key,
                          const coord::DeltaMsg& m) {
    obs::ObsSpan span(obs::Cat::kCoord, "merge_delta", "iterations",
                      m.iterations);
    // Cumulative iteration cursor: max() makes replays idempotent.
    const std::int64_t increment =
        std::max<std::int64_t>(0, m.iterations - sh.iterations_completed);
    sh.iterations_completed =
        std::max(sh.iterations_completed, m.iterations);
    completed += increment;
    m_completed.set(completed);

    // Consume quota from the shard's leases, oldest grant first.
    std::int64_t consume = increment;
    std::vector<std::uint64_t> drained;
    for (auto& [id, l] : leases) {
      if (consume <= 0) break;
      if (l.shard != key) continue;
      const int take =
          static_cast<int>(std::min<std::int64_t>(consume, l.remaining));
      l.remaining -= take;
      consume -= take;
      if (l.remaining <= 0) drained.push_back(id);
    }
    for (std::uint64_t id : drained) leases.erase(id);

    rt::CoverageBitmap bm(target.table->num_branches());
    for (sym::BranchId b : m.covered) {
      if (static_cast<std::size_t>(b) >= target.table->num_branches()) {
        continue;
      }
      // bm doubles as the within-delta dedup: a repeated id must land in
      // the broadcast log once, or every shard cursor replays it forever.
      if (!coverage.branch_covered(b) && !bm.covered(b)) {
        covered_log.push_back(b);
      }
      bm.mark(b);
    }
    coverage.merge(bm);
    for (std::uint64_t h : m.interleaving_seen) {
      if (iseen.insert(h).second) iseen_log.push_back(h);
    }

    for (const BugRecord& b : m.bugs) {
      const std::string sig = detail::bug_signature(b.message);
      const auto it = std::find_if(
          bugs.begin(), bugs.end(), [&](const BugRecord& have) {
            return detail::bug_signature(have.message) == sig;
          });
      if (it == bugs.end()) {
        bugs.push_back(b);
        obs::JournalEvent(journal, "bug",
                          static_cast<int>(std::min<std::int64_t>(
                              completed, INT32_MAX)))
            .str("shard", key)
            .str("message", b.message);
      } else {
        it->occurrences = std::max(it->occurrences, b.occurrences);
      }
    }

    if (!m.ledger_blob.empty()) {
      std::istringstream is(m.ledger_blob);
      (void)ledger.merge(is);
    }

    note_telemetry_locked(sh, m.telemetry);
    renew_locked(sh, key);
    update_board_locked();
    update_diagnosis_locked(/*force=*/false);
    ++deltas_since_checkpoint;
    dirty = true;
    journal.flush();
    cv.notify_all();
  }

  // ---- frame handlers (message-server thread) ----

  serve::WireFrame error_reply(const std::string& reason) {
    return serve::WireFrame{coord::kError, reason};
  }

  serve::WireFrame on_frame(std::uint64_t conn,
                            const serve::WireFrame& frame) {
    std::lock_guard<std::mutex> lock(mu);
    switch (frame.type) {
      case coord::kHello: {
        coord::HelloMsg m;
        if (!coord::decode_hello(frame.payload, m)) {
          return error_reply("bad hello");
        }
        const std::string key = coord::shard_key(m.name, m.token);
        ShardState& sh = shards[key];
        const bool fresh = sh.last_seen == Clock::time_point{};
        if (fresh) {
          sh.name = m.name;
          sh.ordinal = next_ordinal++;
        }
        sh.connected = true;
        sh.conn = conn;
        conn_to_shard[conn] = key;
        ++joined;
        m_joined.inc();
        m_connected.set(
            static_cast<std::int64_t>(connected_count_locked()));
        obs::instant(obs::Cat::kCoord, "shard_joined", "ordinal",
                     sh.ordinal);
        // Both sides' wall clocks at the handshake: `compi trace-merge`
        // derives per-shard clock drift from these to align the merged
        // timeline.
        obs::JournalEvent(journal, "shard_joined",
                          static_cast<int>(std::min<std::int64_t>(
                              completed, INT32_MAX)))
            .str("shard", key)
            .num("ordinal", sh.ordinal)
            .boolean("rejoin", !fresh)
            .num("shard_wall_us", m.wall_us)
            .num("coord_wall_us", wall_clock_us());
        journal.flush();
        // Welcome is a full resync: reset the cursors so the sync below
        // carries the complete covered/seen logs.  This is what makes a
        // coordinator restart (fresh logs, restored sets) transparent.
        sh.covered_cursor = 0;
        sh.iseen_cursor = 0;
        renew_locked(sh, key);
        coord::WelcomeMsg w;
        w.ordinal = sh.ordinal;
        w.sync = sync_for_locked(sh);
        dirty = true;
        return serve::WireFrame{coord::kWelcome, coord::encode_welcome(w)};
      }
      case coord::kLeaseRequest: {
        coord::LeaseRequestMsg m;
        if (!coord::decode_lease_request(frame.payload, m)) {
          return error_reply("bad lease_request");
        }
        const auto it = shards.find(m.shard);
        if (it == shards.end()) return error_reply("unknown shard");
        ShardState& sh = it->second;
        obs::ObsSpan span(obs::Cat::kCoord, "lease_grant");
        renew_locked(sh, m.shard);
        coord::LeaseGrantMsg g;
        if (done_locked()) {
          g.stop = true;
        } else {
          const std::int64_t avail =
              opts.budget - completed - outstanding_locked();
          if (avail <= 0) {
            g.wait_ms = std::max(50, opts.tick_ms * 4);
          } else {
            g.lease_id = next_lease_id++;
            g.quota = static_cast<int>(std::min<std::int64_t>(
                avail, std::max(1, opts.lease_quota)));
            leases[g.lease_id] = LiveLease{
                m.shard, g.quota,
                Clock::now() +
                    std::chrono::milliseconds(opts.lease_ttl_ms)};
            dirty = true;
          }
        }
        g.sync = sync_for_locked(sh);
        return serve::WireFrame{coord::kLeaseGrant,
                                coord::encode_lease_grant(g)};
      }
      case coord::kDelta: {
        coord::DeltaMsg m;
        if (!coord::decode_delta(frame.payload, m)) {
          return error_reply("bad delta");
        }
        const auto it = shards.find(m.shard);
        if (it == shards.end()) return error_reply("unknown shard");
        merge_delta_locked(it->second, m.shard, m);
        coord::AckMsg a;
        a.stop = done_locked();
        a.sync = sync_for_locked(it->second);
        return serve::WireFrame{coord::kAck, coord::encode_ack(a)};
      }
      case coord::kHeartbeat: {
        coord::HeartbeatMsg m;
        if (!coord::decode_heartbeat(frame.payload, m)) {
          return error_reply("bad heartbeat");
        }
        const auto it = shards.find(m.shard);
        if (it == shards.end()) return error_reply("unknown shard");
        note_telemetry_locked(it->second, m.telemetry);
        renew_locked(it->second, m.shard);
        coord::AckMsg a;
        a.stop = done_locked();
        a.sync = sync_for_locked(it->second);
        return serve::WireFrame{coord::kAck, coord::encode_ack(a)};
      }
      case coord::kFinished: {
        coord::HeartbeatMsg m;  // Finished carries the heartbeat payload
        if (!coord::decode_heartbeat(frame.payload, m)) {
          return error_reply("bad finished");
        }
        const auto it = shards.find(m.shard);
        if (it != shards.end()) {
          // Clean departure: return unreported quota to the pool without
          // declaring the shard lost.
          reclaim_shard_leases_locked(m.shard, "finished");
          it->second.connected = false;
          conn_to_shard.erase(it->second.conn);
          it->second.conn = 0;
          m_connected.set(
              static_cast<std::int64_t>(connected_count_locked()));
        }
        coord::AckMsg a;
        a.stop = done_locked();
        if (it != shards.end()) a.sync = sync_for_locked(it->second);
        return serve::WireFrame{coord::kAck, coord::encode_ack(a)};
      }
      default:
        return error_reply("unexpected frame");
    }
  }

  void on_disconnect(std::uint64_t conn) {
    std::lock_guard<std::mutex> lock(mu);
    const auto it = conn_to_shard.find(conn);
    if (it == conn_to_shard.end()) return;
    const std::string key = it->second;
    conn_to_shard.erase(it);
    const auto sit = shards.find(key);
    if (sit != shards.end() && sit->second.conn == conn) {
      mark_lost_locked(sit->second, key, "disconnect");
      journal.flush();
    }
  }

  void on_tick() {
    std::lock_guard<std::mutex> lock(mu);
    const auto now = Clock::now();
    // Expired leases (missed heartbeats) and silent shards.
    std::vector<std::uint64_t> expired;
    for (const auto& [id, l] : leases) {
      if (l.deadline < now) expired.push_back(id);
    }
    for (std::uint64_t id : expired) reclaim_lease_locked(id, "expired");
    const auto silent_cutoff =
        now - std::chrono::milliseconds(opts.lease_ttl_ms);
    for (auto& [key, sh] : shards) {
      if (sh.connected && sh.last_seen < silent_cutoff) {
        conn_to_shard.erase(sh.conn);
        mark_lost_locked(sh, key, "missed_heartbeats");
      }
    }
    if (!expired.empty()) journal.flush();
    update_diagnosis_locked(/*force=*/false);
    maybe_checkpoint_locked(false);
  }

  // ---- persistence ----

  [[nodiscard]] ckpt::CampaignCheckpoint snapshot_locked() const {
    ckpt::CampaignCheckpoint c;
    c.next_iteration =
        static_cast<int>(std::min<std::int64_t>(completed, INT32_MAX));
    c.covered = covered_log;
    c.bugs = bugs;
    c.interleaving_seen = iseen_log;
    std::sort(c.interleaving_seen.begin(), c.interleaving_seen.end());
    {
      std::ostringstream os;
      ledger.write(os);
      c.ledger_state = os.str();
    }
    c.is_coordinator = true;
    c.coord_budget = opts.budget;
    c.coord_completed = completed;
    c.coord_next_lease_id = next_lease_id;
    for (const auto& [id, l] : leases) {
      c.coord_leases.push_back(ckpt::CoordLease{id, l.shard, l.remaining});
    }
    for (const auto& [key, sh] : shards) {
      c.coord_shards.push_back(ckpt::CoordShardCursor{
          key, sh.iterations_completed, sh.covered_cursor});
    }
    return c;
  }

  void maybe_checkpoint_locked(bool force) {
    if (session == nullptr || !dirty) return;
    const bool due =
        force ||
        deltas_since_checkpoint >= opts.checkpoint_every_deltas ||
        Clock::now() - last_checkpoint > std::chrono::seconds(1);
    if (!due) return;
    session->write_checkpoint(snapshot_locked());
    deltas_since_checkpoint = 0;
    last_checkpoint = Clock::now();
    dirty = false;
  }

  bool restore_locked() {
    const auto c = read_checkpoint(opts.log_dir);
    if (!c || !c->is_coordinator) return false;
    completed = c->coord_completed;
    m_completed.set(completed);
    next_lease_id = c->coord_next_lease_id;
    rt::CoverageBitmap bm(target.table->num_branches());
    for (sym::BranchId b : c->covered) {
      if (static_cast<std::size_t>(b) >= target.table->num_branches()) {
        continue;
      }
      covered_log.push_back(b);
      bm.mark(b);
    }
    coverage.merge(bm);
    for (std::uint64_t h : c->interleaving_seen) {
      if (iseen.insert(h).second) iseen_log.push_back(h);
    }
    bugs = c->bugs;
    if (!c->ledger_state.empty()) {
      std::istringstream is(c->ledger_state);
      if (!ledger.read(is)) ledger = CoverageLedger(*target.table);
    }
    for (const ckpt::CoordShardCursor& s : c->coord_shards) {
      ShardState sh;
      sh.name = s.shard.substr(0, s.shard.find('@'));
      sh.ordinal = next_ordinal++;
      sh.iterations_completed = s.iterations_completed;
      // Cursors index the PREVIOUS process's covered log; Welcome resyncs
      // in full, so they restart at zero here.
      sh.covered_cursor = 0;
      sh.iseen_cursor = 0;
      shards.emplace(s.shard, std::move(sh));
    }
    // Restored leases belonged to connections that died with the old
    // process: reclaim them all (idempotent re-execution makes this safe).
    for (const ckpt::CoordLease& l : c->coord_leases) {
      leases[l.id] =
          LiveLease{l.shard, l.remaining, Clock::time_point{}};
      reclaim_lease_locked(l.id, "coordinator_restart");
    }
    dirty = true;
    return true;
  }

  void finalize() {
    std::lock_guard<std::mutex> lock(mu);
    for (auto& [key, sh] : shards) {
      if (sh.connected) mark_lost_locked(sh, key, "coordinator_stop");
    }
    update_diagnosis_locked(/*force=*/true);
    dirty = true;
    maybe_checkpoint_locked(true);
    if (opts.trace && !opts.log_dir.empty()) {
      std::ofstream out(std::filesystem::path(opts.log_dir) / "trace.json");
      obs::tracer().write_chrome_json(out);
    }
    if (session != nullptr) {
      CampaignResult result;
      result.bugs = bugs;
      result.covered_branches = coverage.covered_branches();
      result.reachable_branches = coverage.reachable_branches();
      result.total_branches = coverage.total_branches();
      result.coverage_rate = coverage.rate();
      result.function_coverage = coverage.per_function();
      result.total_seconds = elapsed();
      session->write_summary(result);
      session->write_ledger(ledger, *target.table);
    }
    journal.flush();
    journal.close();
  }
};

Coordinator::Coordinator(const TargetInfo& target, CoordinatorOptions options)
    : impl_(std::make_unique<Impl>(target, std::move(options))) {}

Coordinator::~Coordinator() { stop(); }

bool Coordinator::start() {
  Impl& im = *impl_;
  if (im.server.running()) return false;
  if (im.opts.trace) {
    obs::tracer().configure(
        static_cast<std::size_t>(std::max(1, im.opts.trace_buffer_kb)));
    obs::tracer().set_enabled(true);
  }
  if (!im.opts.log_dir.empty()) {
    im.session = std::make_unique<SessionWriter>(im.opts.log_dir, 0);
    if (im.opts.resume) {
      std::lock_guard<std::mutex> lock(im.mu);
      (void)im.restore_locked();
    }
    if (im.opts.journal) {
      const auto path =
          std::filesystem::path(im.opts.log_dir) / "journal.jsonl";
      std::int64_t boundary = 0;
      {
        std::lock_guard<std::mutex> lock(im.mu);
        boundary = im.completed;
      }
      if (im.opts.resume) {
        (void)im.journal.open_resume(
            path,
            static_cast<int>(std::min<std::int64_t>(boundary, INT32_MAX)));
      } else {
        (void)im.journal.open(path);
      }
    }
  }

  serve::MsgServer::Callbacks cb;
  cb.on_frame = [im = impl_.get()](std::uint64_t conn,
                                   const serve::WireFrame& f) {
    return im->on_frame(conn, f);
  };
  cb.on_disconnect = [im = impl_.get()](std::uint64_t conn) {
    im->on_disconnect(conn);
  };
  cb.on_tick = [im = impl_.get()] { im->on_tick(); };
  im.server.set_callbacks(std::move(cb));
  if (!im.server.start(im.opts.port, coord::kCoordinatorAccepts,
                       im.opts.tick_ms)) {
    return false;
  }

  if (im.opts.serve_port >= 0) {
    im.board = std::make_shared<obs::StatusBoard>(
        1, static_cast<int>(
               std::min<std::int64_t>(im.opts.budget, INT32_MAX)));
    {
      std::lock_guard<std::mutex> lock(im.mu);
      im.update_board_locked();
    }
    serve::ControlPlaneConfig cp;
    cp.port = im.opts.serve_port;
    cp.registry = &obs::registry();
    cp.journal = &im.journal;
    cp.status = [board = im.board] { return board->snapshot(); };
    cp.fleet = [im = impl_.get()] {
      std::lock_guard<std::mutex> lock(im->mu);
      return im->fleet_json_locked();
    };
    // /healthz carries the real fleet verdict: 503 once the diagnosis
    // engine classifies the merged coverage curve as stalled (a finished
    // campaign is healthy, not stalled).
    cp.healthy = [im = impl_.get()]() -> std::pair<bool, std::string> {
      std::lock_guard<std::mutex> lock(im->mu);
      std::ostringstream os;
      os << "coordinating: " << im->completed << '/' << im->opts.budget
         << " iterations, " << im->connected_count_locked() << " shards";
      if (im->done_locked()) {
        os << "; budget complete";
        return {true, os.str()};
      }
      const obs::Diagnosis& diag = im->diagnosis_engine.current();
      if (diag.kind == obs::StallKind::kProgressing) {
        return {true, os.str()};
      }
      os << "; " << diag.detail;
      return {false, os.str()};
    };
    if (im.control_plane.start(std::move(cp)) && im.board != nullptr) {
      im.board->set_serve_port(im.control_plane.port());
    }
  }
  return true;
}

void Coordinator::stop() {
  Impl& im = *impl_;
  if (!im.server.running()) return;
  im.control_plane.stop();
  im.server.stop();  // drains final on_disconnects on the server thread
  im.finalize();
  im.cv.notify_all();
}

bool Coordinator::running() const { return impl_->server.running(); }

int Coordinator::port() const { return impl_->server.port(); }

int Coordinator::http_port() const {
  return impl_->control_plane.running() ? impl_->control_plane.port() : -1;
}

bool Coordinator::done() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->done_locked();
}

bool Coordinator::wait_until_done(double timeout_seconds) {
  std::unique_lock<std::mutex> lock(impl_->mu);
  const auto pred = [this] { return impl_->done_locked(); };
  if (timeout_seconds <= 0.0) {
    impl_->cv.wait(lock, pred);
  } else {
    impl_->cv.wait_for(lock,
                       std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(timeout_seconds)),
                       pred);
  }
  return impl_->done_locked();
}

std::int64_t Coordinator::completed() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->completed;
}

std::int64_t Coordinator::budget() const { return impl_->opts.budget; }

std::vector<sym::BranchId> Coordinator::covered_ids() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  std::vector<sym::BranchId> out = impl_->covered_log;
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<BugRecord> Coordinator::bugs() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->bugs;
}

std::size_t Coordinator::shards_joined() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->joined;
}

std::size_t Coordinator::shards_lost() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->lost;
}

std::size_t Coordinator::leases_reclaimed() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->reclaimed;
}

std::string Coordinator::fleet_json() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->fleet_json_locked();
}

std::pair<std::string, std::string> Coordinator::diagnosis() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  const obs::Diagnosis& d = impl_->diagnosis_engine.current();
  return {obs::to_string(d.kind), d.detail};
}

}  // namespace compi
