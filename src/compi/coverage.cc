#include "compi/coverage.h"

namespace compi {

CoverageTracker::CoverageTracker(const rt::BranchTable& table)
    : table_(&table),
      merged_(table.num_branches()),
      function_seen_(table.functions().size(), 0),
      sites_per_function_(table.functions().size(), 0) {
  for (std::size_t s = 0; s < table.num_sites(); ++s) {
    ++sites_per_function_[table.function_index(static_cast<sym::SiteId>(s))];
  }
}

void CoverageTracker::merge(const rt::CoverageBitmap& covered) {
  for (sym::BranchId b : covered.covered_ids()) {
    merged_.mark(b);
    function_seen_[table_->function_index(sym::site_of(b))] = 1;
  }
}

std::size_t CoverageTracker::reachable_branches() const {
  std::size_t sites = 0;
  for (std::size_t f = 0; f < function_seen_.size(); ++f) {
    if (function_seen_[f]) sites += sites_per_function_[f];
  }
  return sites * 2;
}

std::vector<FunctionCoverage> CoverageTracker::per_function() const {
  std::vector<FunctionCoverage> out;
  out.reserve(table_->functions().size());
  for (std::size_t f = 0; f < table_->functions().size(); ++f) {
    FunctionCoverage fc;
    fc.function = table_->functions()[f];
    fc.encountered = function_seen_[f] != 0;
    out.push_back(std::move(fc));
  }
  for (std::size_t site = 0; site < table_->num_sites(); ++site) {
    const std::size_t f =
        table_->function_index(static_cast<sym::SiteId>(site));
    out[f].total_branches += 2;
    const auto id = static_cast<sym::SiteId>(site);
    out[f].covered_branches +=
        (merged_.covered(sym::branch_id(id, false)) ? 1 : 0) +
        (merged_.covered(sym::branch_id(id, true)) ? 1 : 0);
  }
  return out;
}

double CoverageTracker::rate() const {
  const std::size_t reachable = reachable_branches();
  if (reachable == 0) return 0.0;
  return static_cast<double>(covered_branches()) /
         static_cast<double>(reachable);
}

}  // namespace compi
