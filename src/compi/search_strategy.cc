#include "compi/search_strategy.h"

#include <algorithm>
#include <deque>
#include <istream>
#include <limits>
#include <ostream>
#include <queue>
#include <string>

#include "compi/checkpoint.h"
#include "obs/metrics.h"

namespace compi {
namespace {

/// Consumes one token and checks it equals `tag` (state-blob parsing).
bool expect_tag(std::istream& is, const char* tag) {
  std::string tok;
  return static_cast<bool>(is >> tok) && tok == tag;
}

/// The branch a flip at `depth` steers toward (the untaken arm).
sym::BranchId flip_target(const sym::Path& path, std::size_t depth) {
  return sym::branch_id(path[depth].site, !path[depth].taken);
}

// Global mirrors of the per-strategy stats (metrics.prom aggregates across
// strategy swaps — the two-phase switch replaces the strategy object).
void note_candidate_issued() {
  static obs::Counter& c = obs::registry().counter(
      "compi_strategy_candidates_total",
      "Constraint-negation candidates issued by search strategies");
  c.inc();
}

void note_prediction_failure() {
  static obs::Counter& c = obs::registry().counter(
      "compi_strategy_prediction_failures_total",
      "Divergence prediction failures (path did not flip as predicted)");
  c.inc();
}

// ---------------------------------------------------------------------------
// (Bounded) depth-first search — CREST's BoundedDFS, COMPI's default.
//
// An explicit stack of frames replaces CREST's re-execution recursion: a
// frame is the path of one execution plus the range [lo, idx] of depths
// whose negation is still pending.  Children (deeper flips) are pushed on
// top, so exploration is depth-first; a child's `lo` starts just past the
// flip depth so the parent's prefix is not re-explored.
// ---------------------------------------------------------------------------
class BoundedDfsStrategy final : public SearchStrategy {
 public:
  explicit BoundedDfsStrategy(std::size_t bound) : bound_(bound) {}

  void observe(const sym::Path& path,
               std::optional<std::size_t> flipped_depth) override {
    if (!flipped_depth) {
      // Initial or restart execution: root the search tree here.
      stack_.clear();
      push_frame(path, 0);
      return;
    }
    // The frame that issued the candidate is still on top.
    if (!stack_.empty() &&
        !stack_.back().path.diverges_as_predicted(path, *flipped_depth)) {
      // Prediction failure (CREST logs and skips the subtree).
      ++stats_.prediction_failures;
      note_prediction_failure();
      return;
    }
    push_frame(path, *flipped_depth + 1);
  }

  std::optional<Candidate> next() override {
    while (!stack_.empty()) {
      Frame& f = stack_.back();
      if (f.idx < static_cast<std::ptrdiff_t>(f.lo)) {
        stack_.pop_back();
        continue;
      }
      const std::size_t depth = static_cast<std::size_t>(f.idx--);
      ++stats_.candidates_issued;
      note_candidate_issued();
      return Candidate{f.path.constraints_negating(depth), depth,
                       flip_target(f.path, depth)};
    }
    return std::nullopt;
  }

  [[nodiscard]] const char* name() const override {
    return bound_ == static_cast<std::size_t>(-1) ? "DFS" : "BoundedDFS";
  }

  void save_state(std::ostream& os) const override {
    SearchStrategy::save_state(os);
    os << "frames " << stack_.size() << '\n';
    for (const Frame& f : stack_) {
      os << f.lo << ' ' << f.idx << ' ';
      ckpt::write_path(os, f.path);
    }
  }

  bool load_state(std::istream& is) override {
    if (!SearchStrategy::load_state(is)) return false;
    std::size_t n = 0;
    if (!expect_tag(is, "frames") || !(is >> n)) return false;
    stack_.clear();
    for (std::size_t i = 0; i < n; ++i) {
      Frame f;
      if (!(is >> f.lo >> f.idx) || !ckpt::read_path(is, f.path)) return false;
      stack_.push_back(std::move(f));
    }
    return true;
  }

 private:
  struct Frame {
    sym::Path path;
    std::size_t lo = 0;
    std::ptrdiff_t idx = -1;
  };

  void push_frame(const sym::Path& path, std::size_t lo) {
    const std::size_t limit = std::min(path.size(), bound_);
    if (limit == 0 || lo >= limit) return;
    stack_.push_back(
        {path, lo, static_cast<std::ptrdiff_t>(limit) - 1});
  }

  std::size_t bound_;
  std::vector<Frame> stack_;
};

// ---------------------------------------------------------------------------
// Random branch search: negate one uniformly random branch of the last
// path.  Gives up (=> driver restart) after too many UNSAT picks.
// ---------------------------------------------------------------------------
class RandomBranchStrategy final : public SearchStrategy {
 public:
  explicit RandomBranchStrategy(std::uint64_t seed) : rng_(seed) {}

  void observe(const sym::Path& path, std::optional<std::size_t>) override {
    path_ = path;
    attempts_ = 0;
  }

  std::optional<Candidate> next() override {
    if (path_.empty() || attempts_ > path_.size() * 2) return std::nullopt;
    ++attempts_;
    std::uniform_int_distribution<std::size_t> dist(0, path_.size() - 1);
    const std::size_t depth = dist(rng_);
    ++stats_.candidates_issued;
    note_candidate_issued();
    return Candidate{path_.constraints_negating(depth), depth,
                     flip_target(path_, depth)};
  }

  void accepted(const Candidate&) override { attempts_ = 0; }

  [[nodiscard]] const char* name() const override { return "RandomBranch"; }

  void save_state(std::ostream& os) const override {
    SearchStrategy::save_state(os);
    os << "rng " << rng_ << '\n';
    os << "attempts " << attempts_ << '\n';
    os << "path ";
    ckpt::write_path(os, path_);
  }

  bool load_state(std::istream& is) override {
    if (!SearchStrategy::load_state(is)) return false;
    if (!expect_tag(is, "rng") || !(is >> rng_)) return false;
    if (!expect_tag(is, "attempts") || !(is >> attempts_)) return false;
    return expect_tag(is, "path") && ckpt::read_path(is, path_);
  }

 private:
  std::mt19937_64 rng_;
  sym::Path path_;
  std::size_t attempts_ = 0;
};

// ---------------------------------------------------------------------------
// Uniform random search: walk the path from the start, flipping a fair coin
// at every constraint; the first head is negated (CREST's uniform random
// path sampling).
// ---------------------------------------------------------------------------
class UniformRandomStrategy final : public SearchStrategy {
 public:
  explicit UniformRandomStrategy(std::uint64_t seed) : rng_(seed) {}

  void observe(const sym::Path& path, std::optional<std::size_t>) override {
    path_ = path;
    attempts_ = 0;
  }

  std::optional<Candidate> next() override {
    if (path_.empty() || attempts_ > path_.size() * 2) return std::nullopt;
    ++attempts_;
    std::bernoulli_distribution coin(0.5);
    std::size_t depth = path_.size() - 1;
    for (std::size_t i = 0; i < path_.size(); ++i) {
      if (coin(rng_)) {
        depth = i;
        break;
      }
    }
    ++stats_.candidates_issued;
    note_candidate_issued();
    return Candidate{path_.constraints_negating(depth), depth,
                     flip_target(path_, depth)};
  }

  void accepted(const Candidate&) override { attempts_ = 0; }

  [[nodiscard]] const char* name() const override { return "UniformRandom"; }

  void save_state(std::ostream& os) const override {
    SearchStrategy::save_state(os);
    os << "rng " << rng_ << '\n';
    os << "attempts " << attempts_ << '\n';
    os << "path ";
    ckpt::write_path(os, path_);
  }

  bool load_state(std::istream& is) override {
    if (!SearchStrategy::load_state(is)) return false;
    if (!expect_tag(is, "rng") || !(is >> rng_)) return false;
    if (!expect_tag(is, "attempts") || !(is >> attempts_)) return false;
    return expect_tag(is, "path") && ckpt::read_path(is, path_);
  }

 private:
  std::mt19937_64 rng_;
  sym::Path path_;
  std::size_t attempts_ = 0;
};

// ---------------------------------------------------------------------------
// CFG-directed search: score every candidate flip by the static CFG
// distance from its site to the nearest site with an uncovered branch, and
// negate the best-scoring one (ties broken randomly).
// ---------------------------------------------------------------------------
class CfgStrategy final : public SearchStrategy {
 public:
  CfgStrategy(std::uint64_t seed, const rt::BranchTable& table,
              const CoverageTracker& coverage)
      : rng_(seed), table_(&table), coverage_(&coverage) {}

  void observe(const sym::Path& path, std::optional<std::size_t>) override {
    path_ = path;
    tried_.assign(path_.size(), 0);
    attempts_ = 0;
  }

  std::optional<Candidate> next() override {
    if (path_.empty() || attempts_ > path_.size()) return std::nullopt;
    ++attempts_;

    std::size_t best_depth = path_.size();
    std::size_t best_score = std::numeric_limits<std::size_t>::max();
    std::size_t ties = 0;
    for (std::size_t i = 0; i < path_.size(); ++i) {
      if (tried_[i]) continue;
      const sym::PathEntry& e = path_[i];
      // Flipping entry i lands on branch (site, !taken).
      std::size_t score;
      if (!coverage_->branch_covered(sym::branch_id(e.site, !e.taken))) {
        score = 0;
      } else {
        score = 1 + distance_to_uncovered(e.site);
      }
      if (score < best_score) {
        best_score = score;
        best_depth = i;
        ties = 1;
      } else if (score == best_score) {
        // Reservoir-sample among ties for random tie-breaking.
        std::uniform_int_distribution<std::size_t> dist(0, ties);
        if (dist(rng_) == 0) best_depth = i;
        ++ties;
      }
    }
    if (best_depth >= path_.size()) return std::nullopt;
    tried_[best_depth] = 1;
    ++stats_.candidates_issued;
    note_candidate_issued();
    return Candidate{path_.constraints_negating(best_depth), best_depth,
                     flip_target(path_, best_depth)};
  }

  void accepted(const Candidate&) override { attempts_ = 0; }

  [[nodiscard]] const char* name() const override { return "CFG"; }

  void save_state(std::ostream& os) const override {
    SearchStrategy::save_state(os);
    os << "rng " << rng_ << '\n';
    os << "attempts " << attempts_ << '\n';
    os << "tried " << tried_.size();
    for (std::uint8_t t : tried_) os << ' ' << static_cast<int>(t);
    os << '\n';
    os << "path ";
    ckpt::write_path(os, path_);
  }

  bool load_state(std::istream& is) override {
    if (!SearchStrategy::load_state(is)) return false;
    if (!expect_tag(is, "rng") || !(is >> rng_)) return false;
    if (!expect_tag(is, "attempts") || !(is >> attempts_)) return false;
    std::size_t n = 0;
    if (!expect_tag(is, "tried") || !(is >> n)) return false;
    tried_.assign(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
      int bit = 0;
      if (!(is >> bit)) return false;
      tried_[i] = static_cast<std::uint8_t>(bit);
    }
    return expect_tag(is, "path") && ckpt::read_path(is, path_);
  }

 private:
  /// BFS over the site graph from `from` to the nearest site with an
  /// uncovered branch; a large penalty when none is reachable.
  std::size_t distance_to_uncovered(sym::SiteId from) const {
    std::vector<std::uint8_t> seen(table_->num_sites(), 0);
    std::queue<std::pair<sym::SiteId, std::size_t>> work;
    work.push({from, 0});
    seen[from] = 1;
    while (!work.empty()) {
      const auto [site, dist] = work.front();
      work.pop();
      if (!coverage_->branch_covered(sym::branch_id(site, false)) ||
          !coverage_->branch_covered(sym::branch_id(site, true))) {
        return dist;
      }
      for (sym::SiteId succ : table_->successors(site)) {
        if (!seen[succ]) {
          seen[succ] = 1;
          work.push({succ, dist + 1});
        }
      }
    }
    return table_->num_sites();  // nothing uncovered reachable
  }

  std::mt19937_64 rng_;
  const rt::BranchTable* table_;
  const CoverageTracker* coverage_;
  sym::Path path_;
  std::vector<std::uint8_t> tried_;
  std::size_t attempts_ = 0;
};

// ---------------------------------------------------------------------------
// Generational search (extension; Godefroid's SAGE): every execution is a
// "generation" — ALL of its constraint flips beyond the inherited bound
// are queued as candidates, and generations whose runs uncovered new
// branches are expanded first.  Trades DFS's systematic order for breadth;
// included as the natural next step the paper's search framework invites.
// ---------------------------------------------------------------------------
class GenerationalStrategy final : public SearchStrategy {
 public:
  explicit GenerationalStrategy(const CoverageTracker* coverage)
      : coverage_(coverage) {}

  void observe(const sym::Path& path,
               std::optional<std::size_t> flipped_depth) override {
    // Score by coverage novelty: how much the campaign total grew since
    // the last observation (this run's contribution).
    const std::size_t covered_now =
        coverage_ != nullptr ? coverage_->covered_branches() : 0;
    const std::size_t gain = covered_now - last_covered_;
    last_covered_ = covered_now;

    const std::size_t lo = flipped_depth ? *flipped_depth + 1 : 0;
    for (std::size_t d = lo; d < path.size(); ++d) {
      queue_.push_back(Entry{gain, next_tiebreak_++,
                             path.constraints_negating(d), d,
                             flip_target(path, d)});
      std::push_heap(queue_.begin(), queue_.end());
    }
  }

  std::optional<Candidate> next() override {
    if (queue_.empty()) return std::nullopt;
    std::pop_heap(queue_.begin(), queue_.end());
    Entry top = std::move(queue_.back());
    queue_.pop_back();
    ++stats_.candidates_issued;
    note_candidate_issued();
    return Candidate{std::move(top.constraints), top.depth, top.target};
  }

  [[nodiscard]] const char* name() const override { return "Generational"; }

  void save_state(std::ostream& os) const override {
    SearchStrategy::save_state(os);
    os << "gen " << last_covered_ << ' ' << next_tiebreak_ << '\n';
    os << "entries " << queue_.size() << '\n';
    for (const Entry& e : queue_) {
      os << e.score << ' ' << e.tiebreak << ' ' << e.depth << ' '
         << e.target << ' ' << e.constraints.size() << '\n';
      for (const solver::Predicate& p : e.constraints) {
        ckpt::write_predicate(os, p);
        os << '\n';
      }
    }
  }

  bool load_state(std::istream& is) override {
    if (!SearchStrategy::load_state(is)) return false;
    if (!expect_tag(is, "gen") || !(is >> last_covered_ >> next_tiebreak_)) {
      return false;
    }
    std::size_t n = 0;
    if (!expect_tag(is, "entries") || !(is >> n)) return false;
    queue_.clear();
    queue_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      Entry e;
      std::size_t npreds = 0;
      if (!(is >> e.score >> e.tiebreak >> e.depth >> e.target >> npreds)) {
        return false;
      }
      e.constraints.resize(npreds);
      for (solver::Predicate& p : e.constraints) {
        if (!ckpt::read_predicate(is, p)) return false;
      }
      queue_.push_back(std::move(e));
    }
    std::make_heap(queue_.begin(), queue_.end());
    return true;
  }

 private:
  struct Entry {
    std::size_t score = 0;      // coverage gain of the producing run
    std::uint64_t tiebreak = 0; // FIFO within a score class
    std::vector<solver::Predicate> constraints;
    std::size_t depth = 0;
    sym::BranchId target = -1;  // untaken arm the flip steers toward
    bool operator<(const Entry& o) const {
      if (score != o.score) return score < o.score;  // max-heap on score
      return tiebreak > o.tiebreak;                  // FIFO otherwise
    }
  };
  const CoverageTracker* coverage_;
  /// Max-heap maintained with std::push_heap/pop_heap (an explicit vector
  /// rather than std::priority_queue so checkpoints can walk the entries).
  std::vector<Entry> queue_;
  std::size_t last_covered_ = 0;
  std::uint64_t next_tiebreak_ = 0;
};

}  // namespace

void SearchStrategy::save_state(std::ostream& os) const {
  os << "stats " << stats_.candidates_issued << ' '
     << stats_.prediction_failures << '\n';
}

bool SearchStrategy::load_state(std::istream& is) {
  return expect_tag(is, "stats") &&
         static_cast<bool>(is >> stats_.candidates_issued >>
                           stats_.prediction_failures);
}

std::unique_ptr<SearchStrategy> make_strategy(const StrategyConfig& config) {
  switch (config.kind) {
    case SearchKind::kDfs:
      return std::make_unique<BoundedDfsStrategy>(
          static_cast<std::size_t>(-1));
    case SearchKind::kBoundedDfs:
      return std::make_unique<BoundedDfsStrategy>(config.bound);
    case SearchKind::kRandomBranch:
      return std::make_unique<RandomBranchStrategy>(config.seed);
    case SearchKind::kUniformRandom:
      return std::make_unique<UniformRandomStrategy>(config.seed);
    case SearchKind::kCfg:
      return std::make_unique<CfgStrategy>(config.seed, *config.table,
                                           *config.coverage);
    case SearchKind::kGenerational:
      return std::make_unique<GenerationalStrategy>(config.coverage);
  }
  return nullptr;
}

}  // namespace compi
