// File-based testing sessions.
//
// The paper's tool communicates with the target through files: every
// process writes its log after each execution, COMPI reads them to drive
// the next test, and error-inducing inputs are logged for later analysis
// (§II-A, §V).  SessionWriter reproduces that on-disk layout:
//
//   <dir>/iter_<n>/rank_<r>.log   per-rank execution logs
//   <dir>/iterations.csv          one row per iteration (coverage curves,
//                                 constraint-set sizes, timings)
//   <dir>/bugs.txt                each bug with its error-inducing inputs
//   <dir>/summary.txt             end-of-campaign totals
//   <dir>/checkpoint.txt          periodic resume snapshot (crash recovery)
#pragma once

#include <filesystem>
#include <fstream>
#include <optional>
#include <string>

#include "compi/checkpoint.h"
#include "compi/driver.h"
#include "compi/ledger.h"
#include "minimpi/launcher.h"

namespace compi {

/// A bug read back from a session's bugs.txt — replayable via run_fixed.
struct LoggedBug {
  rt::Outcome outcome = rt::Outcome::kOk;
  std::string message;
  int first_iteration = 0;
  int occurrences = 0;
  int nprocs = 0;
  int focus = 0;
  bool flaky = false;
  std::map<std::string, std::int64_t> inputs;
  /// Wildcard decision vector of the failing run (match-scheduled
  /// campaigns only; empty otherwise).
  minimpi::MatchPlan decisions;
};

/// Parses a session's bugs.txt (written by SessionWriter::write_summary).
[[nodiscard]] std::vector<LoggedBug> read_bugs(
    const std::filesystem::path& bugs_file);

/// Parses a session's summary.txt into key -> value.
[[nodiscard]] std::map<std::string, std::string> read_summary(
    const std::filesystem::path& summary_file);

/// Loads <dir>/checkpoint.txt; nullopt when absent or unparsable.
[[nodiscard]] std::optional<ckpt::CampaignCheckpoint> read_checkpoint(
    const std::filesystem::path& dir);

class SessionWriter {
 public:
  /// Creates (or reuses) the session directory.  `keep_rank_logs` limits
  /// per-iteration log retention: 0 keeps none, -1 keeps all; otherwise
  /// only the first N iterations' logs are kept (they get large).
  explicit SessionWriter(std::filesystem::path dir, int keep_rank_logs = -1);

  /// Writes every rank's log for one iteration.
  void write_iteration(int iteration, const minimpi::RunResult& run);

  /// Opens iterations.csv for incremental appends: writes the header plus
  /// any `restored` rows (a resumed session replays its checkpointed
  /// prefix) and flushes.  A crash mid-campaign then loses at most the
  /// current row, not the whole file.
  void begin_iterations(const std::vector<IterationRecord>& restored);

  /// Appends one row to iterations.csv and flushes it to disk.
  void append_iteration(const IterationRecord& rec);

  /// Writes iterations.csv, bugs.txt and summary.txt.  The CSV is fully
  /// rewritten (callers that never used begin_iterations — e.g. the random
  /// baseline tester — still get a complete file).
  void write_summary(const CampaignResult& result);

  /// Atomically replaces <dir>/checkpoint.txt (write-to-temp + rename, so a
  /// kill mid-write never leaves a truncated snapshot).
  void write_checkpoint(const ckpt::CampaignCheckpoint& checkpoint);

  /// Rewrites <dir>/ledger.csv from the attribution ledger (called at every
  /// checkpoint and at campaign end, like the obs exports).
  void write_ledger(const CoverageLedger& ledger, const rt::BranchTable& table);

  /// Rewrites <dir>/coverage_timeline.csv: one row per iteration that
  /// increased cumulative coverage (iteration, covered_branches,
  /// new_branches) — the file bench tables and --explain build
  /// iterations-to-coverage columns from.
  void write_coverage_timeline(const std::vector<IterationRecord>& iterations);

  [[nodiscard]] const std::filesystem::path& dir() const { return dir_; }

 private:
  std::filesystem::path dir_;
  int keep_rank_logs_;
  /// Open while incremental appends are active (begin_iterations called).
  std::ofstream csv_;
};

}  // namespace compi
