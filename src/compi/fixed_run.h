// Fixed-input execution: run a target once with chosen input values.
//
// Used by the "simulated testing" experiments (paper §VI-C fixes inputs to
// defaults and disables dynamic input derivation) and by anyone who wants
// to replay an error-inducing input log.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <string>

#include "compi/target.h"
#include "minimpi/launcher.h"

namespace compi {

struct FixedRunOptions {
  int nprocs = 1;
  int focus = 0;
  /// One-way instrumentation: every rank heavy (§IV-B ablation).
  bool one_way = false;
  bool reduction = true;
  std::uint64_t seed = 1;
  std::int64_t step_budget = 50'000'000;
  std::chrono::milliseconds timeout{60'000};
};

/// Runs `target` once with the given named input values; inputs not named
/// get the runtime's deterministic per-key defaults.  Pass `registry` to
/// reuse variable ids across several runs (or to inspect markings after).
[[nodiscard]] minimpi::RunResult run_fixed(
    const TargetInfo& target,
    const std::map<std::string, std::int64_t>& inputs,
    const FixedRunOptions& options = {},
    rt::VarRegistry* registry = nullptr);

}  // namespace compi
