// `--explain`: offline introspection over a logged session directory.
//
// A campaign that plateaus leaves three artifacts behind — journal.jsonl
// (the event-by-event record), ledger.csv (per-branch attribution and
// solver near-misses), and iterations.csv (the coverage curve).  This
// module replays them into the report a human asks for first:
//   * the coverage timeline (which iteration earned each coverage level),
//   * the top never-taken branch sites with the nearest-miss constraint
//     the solver could not satisfy,
//   * per-rank coverage skew (is one rank doing all the discovering?),
//   * the solver time / retry breakdown.
//
// Everything here is read-only and tolerant of partial sessions: a
// missing journal degrades the solver section to the CSV totals, and a
// torn journal tail is skipped exactly as read_journal() skips it.
#pragma once

#include <cstdint>
#include <filesystem>
#include <iosfwd>
#include <string>
#include <vector>

namespace compi::rt {
class BranchTable;
}  // namespace compi::rt

namespace compi {

class CoverageLedger;
struct IterationRecord;

struct ExplainOptions {
  /// Never-taken branch sites shown in the near-miss section.
  int top_misses = 5;
  /// Maximum coverage-timeline rows (discovery iterations are thinned
  /// evenly to this count; the first and last are always kept).
  int max_milestones = 12;
};

/// One parsed ledger.csv row (see CoverageLedger::write_csv for the
/// column meanings).  Unset numeric cells parse to their "never" values.
struct LedgerCsvRow {
  std::int64_t branch = -1;
  std::string site;
  std::string function;
  char arm = 'F';
  bool covered = false;
  std::int64_t first_iteration = -1;
  std::int64_t first_focus = -1;
  std::int64_t first_nprocs = 0;
  std::int64_t first_rank = -1;
  bool first_harvested = false;
  std::uint64_t total_hits = 0;
  std::vector<std::uint32_t> hits_per_rank;
  std::int64_t miss_attempts = 0;
  std::int64_t miss_last_iteration = -1;
  bool miss_budget_exhausted = false;
  std::string miss_constraint;
  std::string first_inputs;  // "name=value name=value ..."
  /// Interleaving replay that first covered this branch (cell 17; absent
  /// in pre-matchings sessions and for input-driven firsts — both -1).
  std::int64_t first_interleaving = -1;
};

/// Splits one CSV record into cells, honoring RFC 4180 quoting (doubled
/// quotes inside quoted cells).  Exposed for tests.
[[nodiscard]] std::vector<std::string> split_csv_row(const std::string& line);

/// Loads <file> written by CoverageLedger::write_csv.  Returns an empty
/// vector when the file is missing or has no data rows.
[[nodiscard]] std::vector<LedgerCsvRow> read_ledger_csv(
    const std::filesystem::path& file);

/// Renders the full introspection report for session directory `dir` onto
/// `os`.  Returns false (after printing which artifact is missing) when
/// the directory has neither a readable ledger.csv nor iterations.csv.
bool explain_session(const std::filesystem::path& dir, std::ostream& os,
                     const ExplainOptions& opts = {});

/// Renders the same report from a LIVE campaign (the /explain endpoint):
/// the in-memory ledger, the iteration records so far, and raw journal
/// lines from the in-memory tap.  The ledger CSV is rendered and re-parsed
/// through the exact offline reader so live and offline reports can never
/// drift.  The caller must hold whatever lock guards the ledger and
/// iteration vector for the duration of the call.
[[nodiscard]] std::string explain_live(
    const CoverageLedger& ledger, const rt::BranchTable& table,
    const std::vector<IterationRecord>& iterations,
    const std::vector<std::string>& journal_lines,
    const ExplainOptions& opts = {});

}  // namespace compi
