#include "compi/driver.h"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <functional>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>

#include "compi/checkpoint.h"
#include "compi/driver_internal.h"
#include "compi/explain.h"
#include "compi/interleaving.h"
#include "compi/ledger.h"
#include "compi/session.h"
#include "compi/work_source.h"
#include "minimpi/launcher.h"
#include "obs/diagnosis.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "obs/phase_clock.h"
#include "obs/status.h"
#include "obs/trace.h"
#include "sandbox/fork_server.h"
#include "sandbox/supervisor.h"
#include "serve/control_plane.h"
#include "solver/cache.h"
#include "solver/solver.h"

namespace compi {

using detail::bug_signature;
using detail::mix_seed;

Campaign::Campaign(const TargetInfo& target, CampaignOptions options)
    : target_(target), options_(std::move(options)) {}

CampaignResult Campaign::run() {
  return options_.workers > 1 ? run_parallel() : run_serial();
}

CampaignResult Campaign::run_serial() {
  using Clock = std::chrono::steady_clock;

  // ---- observability setup ----
  // The driver owns track 0 of the trace; MiniMPI rank threads claim
  // tracks 1..nprocs inside launch().
  obs::set_thread_track(0);
  if (options_.trace) {
    obs::tracer().configure(options_.trace_buffer_kb);
    obs::tracer().set_enabled(true);
  }
  auto& reg = obs::registry();
  obs::Counter& m_iterations =
      reg.counter("compi_iterations_total", "Campaign iterations executed");
  obs::Counter& m_restarts =
      reg.counter("compi_restarts_total", "Restarts with fresh random inputs");
  obs::Counter& m_retries = reg.counter(
      "compi_transient_retries_total",
      "Transient-failure retries (timeouts, solver budget exhaustion)");
  obs::Counter& m_bugs =
      reg.counter("compi_bugs_total", "Distinct bugs discovered");
  obs::Gauge& m_covered =
      reg.gauge("compi_covered_branches", "Cumulative covered branches");
  obs::Histogram& m_exec_us = reg.histogram(
      "compi_exec_us", "Per-iteration target execution time (us)");
  obs::Histogram& m_solve_us = reg.histogram(
      "compi_solve_us", "Per-iteration constraint solving time (us)");
  obs::Histogram& m_solver_nodes = reg.histogram(
      "compi_solver_nodes", "Per-iteration solver search nodes expanded");
  obs::Counter& m_sandbox_signal_kills = reg.counter(
      "compi_sandbox_signal_kills_total",
      "Sandboxed children killed by a real signal (SIGSEGV, SIGABRT, ...)");
  obs::Counter& m_sandbox_hang_kills = reg.counter(
      "compi_sandbox_hang_kills_total",
      "Sandboxed children SIGKILLed by the hang watchdog");
  obs::Counter& m_sandbox_harvest_bytes = reg.counter(
      "compi_sandbox_harvest_bytes_total",
      "Bytes salvaged from sandboxed children (pipe stream + coverage map)");
  obs::Counter& m_warm_spawns = reg.counter(
      "compi_warm_spawns_total",
      "Iterations forked from the fork server's warm snapshot");
  obs::Counter& m_cold_forks = reg.counter(
      "compi_cold_forks_total",
      "Iterations that fell back to a cold per-iteration fork");
  obs::Counter& m_batch_runs = reg.counter(
      "compi_batch_runs_total",
      "Iterations executed in-process by the --batch-reset fast path");
  obs::Counter& m_server_restarts = reg.counter(
      "compi_fork_server_restarts_total",
      "Fork-server deaths absorbed by a restart");
  obs::Histogram& m_spawn_us = reg.histogram(
      "compi_spawn_us", "Warm-spawn latency, spawn frame to reap (us)");
  obs::Counter& m_cache_hits = reg.counter(
      "compi_solver_cache_hits_total",
      "Solver memoization cache hits (query answered without searching)");
  obs::Counter& m_cache_misses = reg.counter(
      "compi_solver_cache_misses_total",
      "Solver memoization cache misses (full backtracking search ran)");
  obs::Counter& m_cache_evictions = reg.counter(
      "compi_solver_cache_evictions_total",
      "Solver memoization cache LRU evictions");
  obs::Counter& m_interleavings = reg.counter(
      "compi_interleavings_total",
      "Reordered wildcard matchings replayed (--explore-matchings)");
  obs::Gauge& m_frontier_depth = reg.gauge(
      "compi_frontier_depth",
      "Unexplored negation candidates currently queued by the search");
  obs::Gauge& m_interleavings_pending = reg.gauge(
      "compi_interleavings_pending",
      "Reordered wildcard matchings queued and awaiting replay");
  obs::Gauge& m_worker_progress = reg.gauge(
      "compi_worker_last_progress_seconds{worker=\"0\"}",
      "Campaign-relative time of each worker's last completed iteration");

  // Solver memoization (--solver-cache=N entries; 0 = off, the default).
  // Optional so the off state carries zero overhead — solve_incremental
  // takes a plain nullptr.
  std::optional<solver::SolveCache> solve_cache;
  if (options_.solver_cache_entries > 0) {
    solve_cache.emplace(
        static_cast<std::size_t>(options_.solver_cache_entries));
  }
  solver::SolveCache* cache = solve_cache ? &*solve_cache : nullptr;
  // The registry's counters are cumulative across campaigns in one process
  // (bench loops); sync by delta so each export reflects this cache's
  // totals without double counting.
  const auto sync_cache_metrics = [&] {
    if (cache == nullptr) return;
    m_cache_hits.inc(static_cast<std::int64_t>(cache->hits()) -
                     m_cache_hits.value());
    m_cache_misses.inc(static_cast<std::int64_t>(cache->misses()) -
                       m_cache_misses.value());
    m_cache_evictions.inc(static_cast<std::int64_t>(cache->evictions()) -
                          m_cache_evictions.value());
  };

  // Dumps metrics.prom / trace.json next to the session (or into the
  // working directory when no log dir is configured).  Called at every
  // checkpoint and at campaign end, so a killed campaign still leaves
  // observability artifacts behind.
  const auto export_obs = [&] {
    namespace fs = std::filesystem;
    const fs::path base =
        options_.log_dir.empty() ? fs::path(".") : fs::path(options_.log_dir);
    sync_cache_metrics();
    if (options_.metrics) {
      std::ofstream out(base / "metrics.prom");
      reg.write_prometheus(out);
    }
    if (options_.trace) {
      std::ofstream out(base / "trace.json");
      obs::tracer().write_chrome_json(out);
    }
  };

  obs::ObsSpan campaign_span(obs::Cat::kDriver, "campaign");
  const auto campaign_start = Clock::now();
  const auto elapsed = [&] {
    return std::chrono::duration<double>(Clock::now() - campaign_start)
        .count();
  };

  CampaignResult result;
  rt::VarRegistry registry;
  CoverageTracker coverage(*target_.table);
  CoverageLedger ledger(*target_.table);
  obs::Journal journal;
  Framework framework(registry, options_.max_procs, options_.framework,
                      options_.conflict_resolution);
  std::optional<SessionWriter> session;
  if (!options_.log_dir.empty()) session.emplace(options_.log_dir);
  solver::Solver the_solver({options_.solver_node_budget});

  // ---- live status board (--status-file heartbeat + GET /status) ----
  // The board is the single writer both the file heartbeat and the control
  // plane render from; when serving without an explicit --status-file the
  // heartbeat lands in the session directory so `compi top <file>` and the
  // CI smoke test can discover the ephemeral port.
  const bool serving = options_.serve_port >= 0;
  std::string status_path = options_.status_file;
  if (serving && status_path.empty() && session) {
    status_path = (session->dir() / "status.json").string();
  }
  std::shared_ptr<obs::StatusBoard> board;
  if (serving || !status_path.empty()) {
    board = std::make_shared<obs::StatusBoard>(1, options_.iterations);
    board->set_campaign(options_.initial_nprocs, options_.initial_focus);
  }
  // Leaf mutex ordering the /explain endpoint (server thread) against the
  // loop's ledger and iteration-record mutations.  Never taken when not
  // serving, so the serve-off loop is untouched.
  std::mutex live_mu;
  const auto live_lock = [&] {
    return serving ? std::unique_lock<std::mutex>(live_mu)
                   : std::unique_lock<std::mutex>();
  };

  TestPlan plan;
  plan.nprocs = options_.initial_nprocs;
  plan.focus = options_.initial_focus;

  // Two-phase search (paper §II-B): pure DFS for the first
  // dfs_phase_iterations, then BoundedDFS with a bound derived from the
  // longest observed constraint set.  Other strategies run single-phase.
  const bool two_phase = options_.search == SearchKind::kBoundedDfs;
  StrategyConfig scfg;
  scfg.kind = two_phase ? SearchKind::kDfs : options_.search;
  scfg.seed = options_.seed;
  scfg.table = target_.table;
  scfg.coverage = &coverage;
  std::unique_ptr<SearchStrategy> strategy = make_strategy(scfg);

  std::optional<std::size_t> pending_depth;  // depth of the accepted flip
  bool next_is_restart = true;               // the first run is a "restart"
  bool bounded_phase = false;                // two-phase switch happened
  int failures = 0;
  int consecutive_replans = 0;
  int start_iter = 0;
  std::vector<std::string> known_hangs;  // signatures proven to really hang
  InterleavingFrontier interleavings;    // --explore-matchings frontier

  // ---- resume a checkpointed session (crash recovery) ----
  if (options_.resume && !options_.log_dir.empty()) {
    std::optional<ckpt::CampaignCheckpoint> c =
        read_checkpoint(options_.log_dir);
    // A snapshot taken by a parallel campaign carries per-worker cursors the
    // serial loop has no way to honour: start fresh instead of resuming one
    // of N in-flight search lines arbitrarily.
    if (c && c->seed == options_.seed && c->workers == 1) {
      if (two_phase && c->bounded_phase) {
        scfg.kind = SearchKind::kBoundedDfs;
        scfg.bound = c->depth_bound_used;
      }
      strategy = make_strategy(scfg);
      std::istringstream blob(c->strategy_state);
      if (c->strategy_name == strategy->name() &&
          strategy->load_state(blob)) {
        for (const rt::VarMeta& m : c->registry) {
          registry.intern(m.key, m.kind, m.domain, m.cap, m.comm_index);
        }
        rt::CoverageBitmap bitmap(target_.table->num_branches());
        for (sym::BranchId b : c->covered) bitmap.mark(b);
        coverage.merge(bitmap);
        result.iterations = std::move(c->iterations);
        result.bugs = std::move(c->bugs);
        result.restarts = c->restarts;
        result.max_constraint_set = c->max_constraint_set;
        result.depth_bound_used = c->depth_bound_used;
        result.transient_retries = c->transient_retries;
        result.focus_replans = c->focus_replans;
        result.sandbox_runs = c->sandbox_runs;
        result.sandbox_signal_kills = c->sandbox_signal_kills;
        result.sandbox_hang_kills = c->sandbox_hang_kills;
        result.sandbox_harvest_bytes = c->sandbox_harvest_bytes;
        result.warm_spawns = c->warm_spawns;
        result.cold_forks = c->cold_forks;
        result.fork_server_restarts = c->fork_server_restarts;
        result.batch_runs = c->batch_runs;
        result.resumed = true;
        plan.inputs = std::move(c->plan_inputs);
        plan.nprocs = c->plan_nprocs;
        plan.focus = c->plan_focus;
        pending_depth = c->pending_depth;
        next_is_restart = c->next_is_restart;
        bounded_phase = c->bounded_phase;
        failures = c->failures;
        consecutive_replans = c->consecutive_replans;
        known_hangs = std::move(c->known_hang_signatures);
        interleavings.queue.assign(c->pending_interleavings.begin(),
                                   c->pending_interleavings.end());
        interleavings.seen.insert(c->interleaving_seen.begin(),
                                  c->interleaving_seen.end());
        interleavings.next_id = c->next_interleaving_id;
        interleavings.enqueued = c->interleavings_enqueued;
        interleavings.run_count = c->interleavings_run;
        interleavings.pruned = c->interleavings_pruned;
        interleavings.capped = c->interleavings_capped;
        start_iter = c->next_iteration;
        if (!c->ledger_state.empty()) {
          std::istringstream ledger_blob(c->ledger_state);
          // A failed read keeps the fresh ledger: attribution restarts but
          // the campaign itself is unaffected.
          (void)ledger.read(ledger_blob);
        }
      } else {
        // Unreadable strategy state: fall back to a fresh campaign.
        scfg.kind = two_phase ? SearchKind::kDfs : options_.search;
        scfg.bound = static_cast<std::size_t>(-1);
        strategy = make_strategy(scfg);
      }
    }
  }

  // Open iterations.csv for incremental appends (header + any restored
  // prefix) so a crash mid-campaign loses at most the in-flight row.
  if (session) session->begin_iterations(result.iterations);

  // Open the event journal alongside it.  On resume the journal keeps only
  // events below the checkpoint boundary, so its iteration events stay
  // aligned with the restored iterations.csv prefix.
  if (options_.journal && session) {
    const std::filesystem::path journal_path = session->dir() / "journal.jsonl";
    if (result.resumed) {
      (void)journal.open_resume(journal_path, start_iter);
    } else {
      (void)journal.open(journal_path);
    }
  }

  // Whatever way the campaign ends — budget, bug-budget exhaustion, a
  // thrown fatal error — the journal tail and the metrics/trace exports
  // must land on disk.  The simulated-kill path is the one exception (a
  // real SIGKILL flushes nothing); it relies on its final checkpoint's
  // export instead, which this guard repeats harmlessly.
  struct ExportGuard {
    std::function<void()> fn;
    ~ExportGuard() { fn(); }
  } export_guard{[&] {
    journal.close();
    export_obs();
  }};

  // The control plane is declared AFTER the export guard on purpose:
  // reverse destruction stops the server thread (and with it every live
  // endpoint) before the journal closes and the final export runs — on
  // every exit path, including thrown fatal errors.
  serve::ControlPlane control_plane;
  if (serving && board != nullptr) {
    serve::ControlPlaneConfig cp;
    cp.port = options_.serve_port;
    cp.registry = &reg;
    cp.journal = &journal;
    cp.status = [board] { return board->snapshot(); };
    cp.explain = [&, board] {
      std::lock_guard<std::mutex> lock(live_mu);
      std::vector<std::string> lines;
      (void)journal.tap_since(0, lines);
      return explain_live(ledger, *target_.table, result.iterations, lines);
    };
    // /healthz: live while a worker completed an iteration recently.  The
    // threshold scales with the hang timeout — one test may legitimately
    // sit for hang_timeout_ms (times retries) before the sandbox reaps it,
    // so only a multiple of that is a genuine stall.
    const double stall_threshold = std::max(
        30.0, 3.0 * static_cast<double>(options_.hang_timeout_ms) / 1000.0);
    cp.healthy = [board, stall_threshold, &elapsed] {
      const obs::StatusSnapshot s = board->snapshot();
      double last = 0.0;
      bool active = false;
      for (const obs::WorkerStatus& w : s.worker_status) {
        if (w.phase == obs::WorkerPhase::kDone) continue;
        active = true;
        last = std::max(last, w.last_progress_seconds);
      }
      const double stall = elapsed() - last;
      std::ostringstream detail;
      if (!active || stall <= stall_threshold) {
        detail << "progressing: iteration " << s.iteration << ", "
               << s.covered_branches << " branches";
        return std::make_pair(true, detail.str());
      }
      detail << "stalled: no progress for " << static_cast<int>(stall)
             << "s (threshold " << static_cast<int>(stall_threshold) << "s)";
      if (!s.diagnosis_detail.empty()) {
        detail << "; " << s.diagnosis_detail;
      }
      return std::make_pair(false, detail.str());
    };
    if (control_plane.start(std::move(cp))) {
      board->set_serve_port(control_plane.port());
      // Publish the bound port immediately (iteration -1): with
      // --serve=0 this is how clients discover the ephemeral port.
      if (!status_path.empty()) {
        (void)obs::write_status_file(
            status_path, obs::render_status_json(board->snapshot()));
      }
    }
  }

  const auto backoff = [&](int attempt) {
    if (options_.retry_backoff_ms <= 0) return;
    const int ms = std::min(options_.retry_backoff_ms << attempt, 1000);
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
  };

  // Every test execution funnels through here: in-process by default, or a
  // fork()ed sandbox child under --isolate, so a target that really
  // segfaults or wedges is contained, mapped onto the Outcome taxonomy,
  // and the campaign keeps going with whatever coverage was harvested.
  sandbox::SandboxOptions sandbox_options;
  sandbox_options.hang_timeout =
      std::chrono::milliseconds(options_.hang_timeout_ms);
  sandbox_options.child_mem_mb = options_.child_mem_mb;
  // Warm-snapshot engine (--fork-server, on by default under --isolate):
  // one long-lived server child forks every iteration from a warm
  // snapshot; a dead server falls back to cold run_sandboxed per
  // iteration without losing the in-flight test.
  std::optional<sandbox::ForkServer> fork_server;
  if (options_.isolate && options_.fork_server) {
    sandbox::ForkServerOptions fso;
    fso.sandbox = sandbox_options;
    fso.max_restarts = options_.fork_server_restarts;
    fork_server.emplace(*target_.table, fso);
  }
  // Batched fast path (--batch-reset): a streak of clean sandboxed runs
  // earns in-process execution; any fault demotes back to the sandbox.
  sandbox::BatchGate batch_gate(options_.batch_warmup);
  int journal_iter = start_iter;  // iteration the next journal event names
  // Branch ids the last execute() recovered from the sandbox harvest map
  // (empty for in-process runs and delivered results): the ledger flags
  // first hits that survived a child death with these.
  std::vector<sym::BranchId> last_harvested;
  const auto execute = [&](const minimpi::LaunchSpec& s) {
    last_harvested.clear();
    if (!options_.isolate) return minimpi::launch(s, *target_.table);
    if (options_.batch_reset && batch_gate.ready()) {
      minimpi::RunResult r = sandbox::run_batch_reset(s, *target_.table);
      ++result.batch_runs;
      m_batch_runs.inc();
      if (r.job_outcome() == rt::Outcome::kOk) {
        batch_gate.record_clean();
      } else {
        batch_gate.record_fault();
      }
      return r;
    }
    sandbox::SandboxStats st;
    minimpi::RunResult r;
    if (fork_server) {
      bool warm = false;
      const std::uint64_t restarts_before = fork_server->stats().restarts;
      r = fork_server->run(s, &st, &warm);
      const std::uint64_t deaths =
          fork_server->stats().restarts - restarts_before;
      if (deaths > 0) {
        result.fork_server_restarts += deaths;
        m_server_restarts.inc(static_cast<std::int64_t>(deaths));
        obs::instant(obs::Cat::kSandbox, "server_restart");
        obs::JournalEvent(journal, "fork_server_restart", journal_iter)
            .num("restarts",
                 static_cast<std::int64_t>(fork_server->stats().restarts))
            .boolean("degraded", fork_server->degraded());
      }
      if (warm) {
        ++result.warm_spawns;
        m_warm_spawns.inc();
        m_spawn_us.observe(static_cast<std::int64_t>(
            fork_server->stats().last_spawn_seconds * 1e6));
      } else if (st.forked) {
        ++result.cold_forks;
        m_cold_forks.inc();
      }
    } else {
      r = sandbox::run_sandboxed(s, *target_.table, sandbox_options, &st);
    }
    if (options_.batch_reset && st.forked) {
      const bool clean = !st.signal_kill && !st.hang_kill &&
                         r.job_outcome() == rt::Outcome::kOk;
      if (clean) {
        batch_gate.record_clean();
      } else {
        batch_gate.record_fault();
      }
    }
    if (!st.forked) return r;
    ++result.sandbox_runs;
    result.sandbox_harvest_bytes += st.harvest_bytes;
    m_sandbox_harvest_bytes.inc(
        static_cast<std::int64_t>(st.harvest_bytes));
    last_harvested = std::move(st.harvested);
    if (st.signal_kill) {
      ++result.sandbox_signal_kills;
      m_sandbox_signal_kills.inc();
      obs::instant(obs::Cat::kSandbox, "signal_kill", "signal",
                   st.term_signal);
      obs::JournalEvent(journal, "sandbox_kill", journal_iter)
          .str("kind", "signal")
          .num("signal", st.term_signal)
          .num("harvested_branches",
               static_cast<std::int64_t>(last_harvested.size()));
    }
    if (st.hang_kill) {
      ++result.sandbox_hang_kills;
      m_sandbox_hang_kills.inc();
      obs::instant(obs::Cat::kSandbox, "hang_kill");
      obs::JournalEvent(journal, "sandbox_kill", journal_iter)
          .str("kind", "hang")
          .num("harvested_branches",
               static_cast<std::int64_t>(last_harvested.size()));
    }
    return r;
  };

  const auto save_checkpoint = [&](int next_iteration) {
    if (!session) return;
    obs::ObsSpan span(obs::Cat::kCheckpoint, "save_checkpoint", "iteration",
                      next_iteration);
    // The checkpoint reads the ledger and the iteration records wholesale;
    // keep /explain out while the snapshot is taken.
    const auto live = live_lock();
    ckpt::CampaignCheckpoint c;
    c.seed = options_.seed;
    c.next_iteration = next_iteration;
    c.plan_inputs = plan.inputs;
    c.plan_nprocs = plan.nprocs;
    c.plan_focus = plan.focus;
    c.next_is_restart = next_is_restart;
    c.pending_depth = pending_depth;
    c.failures = failures;
    c.consecutive_replans = consecutive_replans;
    c.bounded_phase = bounded_phase;
    c.restarts = result.restarts;
    c.max_constraint_set = result.max_constraint_set;
    c.depth_bound_used = result.depth_bound_used;
    c.transient_retries = result.transient_retries;
    c.focus_replans = result.focus_replans;
    c.sandbox_runs = result.sandbox_runs;
    c.sandbox_signal_kills = result.sandbox_signal_kills;
    c.sandbox_hang_kills = result.sandbox_hang_kills;
    c.sandbox_harvest_bytes = result.sandbox_harvest_bytes;
    c.warm_spawns = result.warm_spawns;
    c.cold_forks = result.cold_forks;
    c.fork_server_restarts = result.fork_server_restarts;
    c.batch_runs = result.batch_runs;
    c.iterations = result.iterations;
    c.bugs = result.bugs;
    c.covered = coverage.bitmap().covered_ids();
    c.registry = registry.all();
    c.known_hang_signatures = known_hangs;
    c.pending_interleavings.assign(interleavings.queue.begin(),
                                   interleavings.queue.end());
    c.interleaving_seen.assign(interleavings.seen.begin(),
                               interleavings.seen.end());
    // Hash-set iteration order is arbitrary: sort so identical campaigns
    // write byte-identical snapshots.
    std::sort(c.interleaving_seen.begin(), c.interleaving_seen.end());
    c.next_interleaving_id = interleavings.next_id;
    c.interleavings_enqueued = interleavings.enqueued;
    c.interleavings_run = interleavings.run_count;
    c.interleavings_pruned = interleavings.pruned;
    c.interleavings_capped = interleavings.capped;
    c.strategy_name = strategy->name();
    std::ostringstream blob;
    strategy->save_state(blob);
    c.strategy_state = blob.str();
    std::ostringstream ledger_blob;
    ledger.write(ledger_blob);
    c.ledger_state = ledger_blob.str();
    session->write_checkpoint(c);
    session->write_ledger(ledger, *target_.table);
    session->write_coverage_timeline(result.iterations);
    journal.flush();
    export_obs();
  };

  int executed = 0;   // iterations run by THIS process (halt hook)
  bool halted = false;

  // Running totals for the telemetry piggyback (work_source.h) and the
  // stall-diagnosis engine: cumulative solver outcome mix and phase time.
  std::int64_t tele_sat = 0, tele_unsat = 0, tele_budget = 0;
  std::int64_t tele_exec_us = 0, tele_solve_us = 0;
  // Live frontier depth: the last planned constraint set's size, or 0 the
  // moment the strategy ran dry (that is the frontier-starved signal).
  std::int64_t tele_frontier = -1;

  // Stall diagnosis (obs/diagnosis.h): fed once per iteration, journals
  // verdict transitions, and leaves its final verdict on the result.  Pure
  // computation over local state — obs-off and serve-off sessions see the
  // identical artifact bytes they always did.
  obs::DiagnosisEngine diagnosis_engine(&journal);
  const auto diagnosis_input = [&] {
    obs::DiagnosisInput in;
    in.elapsed_seconds = elapsed();
    in.frontier_depth = tele_frontier;
    in.interleavings_pending =
        static_cast<std::int64_t>(interleavings.queue.size());
    in.solver_sat = tele_sat;
    in.solver_unsat = tele_unsat;
    in.solver_budget = tele_budget;
    in.plateau_window_seconds = options_.stall_window_seconds;
    return in;
  };

  // Bug-budget exhaustion (--max-bugs) ends the campaign gracefully: the
  // loop breaks, and summary/ledger/obs exports below all still run.
  const auto bug_budget_hit = [&] {
    return options_.max_bugs > 0 &&
           result.bugs.size() >= static_cast<std::size_t>(options_.max_bugs);
  };

  // Distributed intake: one report per completed iteration.  The delta
  // carries FULL local state and a CUMULATIVE iteration count (see
  // work_source.h) so a replay after a reconnect or a reclaimed lease
  // merges to the same global state.  The ledger blob is rendered lazily —
  // the work source only pays for it when it actually transmits — and the
  // closure runs on THIS thread inside report(), so the live lock ordering
  // holds.
  const auto report_work = [&](bool final_report) {
    if (options_.work_source == nullptr) return;
    WorkDelta d;
    d.final_report = final_report;
    d.covered = coverage.bitmap().covered_ids();
    d.interleaving_seen.assign(interleavings.seen.begin(),
                               interleavings.seen.end());
    {
      const auto live = live_lock();
      d.iterations_completed =
          static_cast<std::int64_t>(result.iterations.size());
      d.bugs = result.bugs;
      if (tele_frontier >= 0) {
        d.frontier_depth = tele_frontier;
      } else if (!result.iterations.empty()) {
        d.frontier_depth = static_cast<std::int64_t>(
            result.iterations.back().constraint_set_size);
      }
    }
    d.elapsed_us = static_cast<std::int64_t>(elapsed() * 1e6);
    d.interleavings_pending =
        static_cast<std::int64_t>(interleavings.queue.size());
    d.solver_sat = tele_sat;
    d.solver_unsat = tele_unsat;
    d.solver_budget = tele_budget;
    d.exec_us = tele_exec_us;
    d.solve_us = tele_solve_us;
    d.ledger_blob = [&] {
      const auto live = live_lock();
      std::ostringstream blob;
      ledger.write(blob);
      return blob.str();
    };
    options_.work_source->report(d);
  };

  // Periodic snapshot / simulated-kill bookkeeping at the bottom of every
  // iteration; returns true when the campaign must stop abruptly.
  const auto end_of_iteration = [&](int iter) {
    report_work(/*final_report=*/false);
    if (options_.checkpoint_interval > 0 &&
        (iter + 1) % options_.checkpoint_interval == 0) {
      save_checkpoint(iter + 1);
    }
    ++executed;
    if (options_.halt_after_iterations > 0 &&
        executed >= options_.halt_after_iterations &&
        iter + 1 < options_.iterations) {
      save_checkpoint(iter + 1);
      return true;
    }
    return false;
  };

  // One "iteration" journal event per iterations.csv row (both the normal
  // and the focus-replan append sites funnel through here) plus the
  // --status-file heartbeat, rewritten via tmp + rename so a monitoring
  // reader never sees a torn file.
  const auto note_iteration = [&](const IterationRecord& rec,
                                  const std::map<std::string, std::int64_t>&
                                      named_inputs,
                                  std::size_t new_branches) {
    obs::JournalEvent(journal, "iteration", rec.iteration)
        .num("nprocs", rec.nprocs)
        .num("focus", rec.focus)
        .str("outcome", rt::to_string(rec.outcome))
        .boolean("restart", rec.restart)
        .num("constraint_set_size",
             static_cast<std::int64_t>(rec.constraint_set_size))
        .num("covered_branches",
             static_cast<std::int64_t>(rec.covered_branches))
        .num("new_branches", static_cast<std::int64_t>(new_branches))
        .real("exec_seconds", rec.exec_seconds)
        .real("solve_seconds", rec.solve_seconds)
        .num("solver_nodes", rec.solver_nodes)
        .num("retries", rec.retries)
        .num("worker", rec.worker)
        .num("interleaving", rec.interleaving)
        .inputs(named_inputs);
    const obs::Diagnosis diag = diagnosis_engine.update(
        diagnosis_input(), static_cast<std::int64_t>(rec.covered_branches),
        rec.iteration);
    journal.flush();
    if (board == nullptr) return;
    board->set_diagnosis(obs::to_string(diag.kind), diag.detail,
                         diag.stalled_seconds);
    board->record_iteration(rec.iteration, rec.covered_branches,
                            result.bugs.size(), elapsed(), rec.nprocs,
                            rec.focus, rt::to_string(rec.outcome),
                            /*worker=*/0);
    board->set_depths(rec.constraint_set_size, interleavings.queue.size());
    if (cache != nullptr) {
      board->set_solver_cache(static_cast<std::int64_t>(cache->hits()),
                              static_cast<std::int64_t>(cache->misses()));
    }
    m_frontier_depth.set(static_cast<std::int64_t>(rec.constraint_set_size));
    m_interleavings_pending.set(
        static_cast<std::int64_t>(interleavings.queue.size()));
    m_worker_progress.set(static_cast<std::int64_t>(elapsed()));
    if (!status_path.empty()) {
      (void)obs::write_status_file(
          status_path, obs::render_status_json(board->snapshot()));
    }
  };

  for (int iter = start_iter; iter < options_.iterations; ++iter) {
    if (options_.time_budget_seconds > 0 &&
        elapsed() >= options_.time_budget_seconds) {
      break;
    }
    // ---- distributed intake: lease one iteration, absorb the fleet ----
    // acquire() blocks for a lease (or passes immediately standalone /
    // degraded); false means the coordinator declared the global budget
    // done.  Remote coverage merges BEFORE planning so the strategy's
    // dedup and stale-candidate pruning skip branches other shards
    // already covered — that is the frontier partition.
    if (options_.work_source != nullptr) {
      if (!options_.work_source->acquire()) {
        obs::JournalEvent(journal, "work_source_stop", iter);
        break;
      }
      const std::vector<sym::BranchId> fleet_covered =
          options_.work_source->take_remote_coverage();
      if (!fleet_covered.empty()) {
        rt::CoverageBitmap fleet(target_.table->num_branches());
        for (const sym::BranchId b : fleet_covered) fleet.mark(b);
        coverage.merge(fleet);
      }
      for (const std::uint64_t h :
           options_.work_source->take_remote_interleavings()) {
        interleavings.seen.insert(h);
      }
    }
    obs::ObsSpan iter_span(obs::Cat::kDriver, "iteration", "iter", iter);
    journal_iter = iter;
    if (board != nullptr) {
      board->worker_phase(0, iter, obs::WorkerPhase::kExecute);
    }
    const std::size_t covered_before = coverage.covered_branches();
    int iter_retries = 0;  // transient retries absorbed by THIS iteration

    // ---- pop a pending reordered matching, if any ----
    // Interleavings are frontier items: each consumes one iteration,
    // replaying its parent run's inputs under the prescribed match plan.
    // The planned input-driven test simply runs on the next iteration.
    std::optional<PendingInterleaving> pending;
    if (options_.explore_matchings && !interleavings.queue.empty()) {
      pending = std::move(interleavings.queue.front());
      interleavings.queue.pop_front();
      ++interleavings.run_count;
      m_interleavings.inc();
      obs::JournalEvent(journal, "interleaving", iter)
          .num("id", pending->id)
          .num("plan_size", static_cast<std::int64_t>(pending->plan.size()))
          .num("nprocs", pending->nprocs)
          .num("focus", pending->focus);
    }
    const solver::Assignment* run_inputs =
        pending ? &pending->inputs : &plan.inputs;
    const int run_nprocs = pending ? pending->nprocs : plan.nprocs;
    const int run_focus = pending ? pending->focus : plan.focus;

    // ---- launch the planned test (§III-D) ----
    minimpi::LaunchSpec spec;
    spec.program = target_.program;
    spec.nprocs = run_nprocs;
    spec.focus = run_focus;
    spec.one_way = options_.one_way;
    spec.registry = &registry;
    spec.inputs = run_inputs;
    spec.rng_seed = mix_seed(options_.seed, static_cast<std::uint64_t>(iter));
    spec.step_budget = options_.step_budget;
    spec.reduction = options_.reduction;
    spec.mark_mpi_vars = options_.framework;
    spec.timeout = options_.test_timeout;
    if (options_.explore_matchings) {
      spec.match_schedule = true;
      if (pending) spec.match_plan = pending->plan;
    }

    // A per-test timeout is transient until proven otherwise: retry with a
    // relaxed clock/step budget (and a re-mixed chaos seed, so injected
    // noise is re-rolled) before letting it count as a hang.
    minimpi::RunResult run;
    for (int attempt = 0;; ++attempt) {
      if (options_.chaos.enabled()) {
        spec.chaos = options_.chaos;
        spec.chaos.seed =
            mix_seed(options_.chaos.seed,
                     static_cast<std::uint64_t>(iter) * 64 +
                         static_cast<std::uint64_t>(attempt));
        obs::JournalEvent(journal, "chaos_armed", iter)
            .num("attempt", attempt)
            .num("seed", static_cast<std::int64_t>(spec.chaos.seed));
      }
      spec.timeout = options_.test_timeout * (1 << attempt);
      spec.step_budget = options_.step_budget << attempt;
      run = execute(spec);
      if (run.job_outcome() != rt::Outcome::kTimeout) break;
      const std::string sig = bug_signature(run.job_message());
      if (std::find(known_hangs.begin(), known_hangs.end(), sig) !=
          known_hangs.end()) {
        break;  // already proven to hang: don't burn retries again
      }
      if (attempt >= options_.retry_max) {
        known_hangs.push_back(sig);
        break;
      }
      obs::instant(obs::Cat::kChaosRetry, "timeout_retry", "attempt", attempt);
      obs::JournalEvent(journal, "retry", iter)
          .str("kind", "timeout")
          .num("attempt", attempt);
      m_retries.inc();
      backoff(attempt);
      ++result.transient_retries;
      ++iter_retries;
    }
    m_iterations.inc();
    if (session) session->write_iteration(iter, run);

    // ---- record coverage (all recorders — or focus only for No_Fwk) ----
    if (options_.framework) {
      coverage.merge(run.merged_coverage());
    } else {
      coverage.merge(run.focus_log().covered);
    }

    const rt::TestLog& focus_log = run.focus_log();
    result.max_constraint_set =
        std::max(result.max_constraint_set, focus_log.path.size());

    // ---- attribute this run's coverage (ledger + journal) ----
    // The named assignment of the run: the focus's actually-used values, or
    // the planned assignment when the focus died before flushing its log
    // (same fallback the bug records use).
    std::map<std::string, std::int64_t> named_inputs;
    for (const auto& [var, value] :
         !focus_log.inputs_used.empty() ? focus_log.inputs_used
                                        : *run_inputs) {
      named_inputs[registry.meta(var).key] = value;
    }
    {
      CoverageLedger::RunContext lctx;
      lctx.iteration = iter;
      lctx.nprocs = run_nprocs;
      lctx.focus = run_focus;
      lctx.inputs = &named_inputs;
      lctx.harvested = &last_harvested;
      lctx.interleaving = pending ? pending->id : -1;
      const auto live = live_lock();
      ledger.record_run(lctx, run);
    }

    IterationRecord rec;
    rec.iteration = iter;
    rec.nprocs = run_nprocs;
    rec.focus = run_focus;
    rec.interleaving = pending ? pending->id : -1;
    rec.outcome = run.job_outcome();
    rec.constraint_set_size = focus_log.path.size();
    rec.covered_branches = coverage.covered_branches();
    rec.exec_seconds = run.wall_seconds;
    rec.restart = next_is_restart;
    rec.retries = iter_retries;
    m_exec_us.observe(static_cast<std::int64_t>(rec.exec_seconds * 1e6));
    tele_exec_us += static_cast<std::int64_t>(rec.exec_seconds * 1e6);
    m_covered.set(static_cast<std::int64_t>(rec.covered_branches));

    // ---- wildcard matchings: journal the decisions, fork alternatives ----
    if (spec.match_schedule) {
      for (const minimpi::MatchRecord& mr : run.match_trace) {
        obs::JournalEvent(journal, "match_choice", iter)
            .num("rank", mr.rank)
            .num("seq", mr.seq)
            .num("src", mr.chosen_src)
            .num("feasible", static_cast<std::int64_t>(mr.feasible.size()))
            .num("interleaving", rec.interleaving);
      }
      if (rec.outcome == rt::Outcome::kDeadlock) {
        obs::JournalEvent(journal, "deadlock", iter)
            .str("cycle", run.job_message())
            .num("interleaving", rec.interleaving);
      }
      // Fork from the actually-used inputs when the focus recorded them:
      // an interleaving replays at a different iteration (different RNG
      // stream), so the planned assignment alone would re-roll any value
      // the parent drew randomly.
      enqueue_alternatives(interleavings, run.match_trace,
                           !focus_log.inputs_used.empty()
                               ? focus_log.inputs_used
                               : *run_inputs,
                           run_nprocs, run_focus,
                           options_.max_interleavings);
    }

    // ---- log error-inducing inputs (§V) ----
    if (rt::is_fault(rec.outcome)) {
      const std::string msg = run.job_message();
      const std::string sig = bug_signature(msg);
      auto known = std::find_if(
          result.bugs.begin(), result.bugs.end(),
          [&](const BugRecord& b) { return bug_signature(b.message) == sig; });
      if (known == result.bugs.end()) {
        BugRecord bug;
        bug.first_iteration = iter;
        bug.occurrences = 1;
        bug.outcome = rec.outcome;
        bug.message = msg;
        bug.inputs = focus_log.inputs_used;
        // A sandboxed child killed by a real signal dies before flushing
        // its log, so the focus's inputs_used is empty: fall back to the
        // planned assignment — those ARE the error-inducing inputs.
        if (bug.inputs.empty()) bug.inputs = *run_inputs;
        for (const auto& [var, value] : bug.inputs) {
          bug.named_inputs[registry.meta(var).key] = value;
        }
        bug.nprocs = run_nprocs;
        bug.focus = run_focus;
        if (spec.match_schedule) {
          // The full decision vector — not just the forced prefix — so the
          // replay pins EVERY wildcard choice of the failing run.
          bug.decisions.reserve(run.match_trace.size());
          for (const minimpi::MatchRecord& mr : run.match_trace) {
            bug.decisions.push_back({mr.rank, mr.seq, mr.chosen_src});
          }
        }
        if (options_.confirm_bugs) {
          // Replay once with the same inputs and NO injected noise; a bug
          // that fails to reproduce is environment-induced, hence flaky.
          minimpi::LaunchSpec confirm = spec;
          confirm.chaos = minimpi::FaultPlan{};
          confirm.inputs = &bug.inputs;
          confirm.match_plan = bug.decisions;
          confirm.timeout = options_.test_timeout;
          confirm.step_budget = options_.step_budget;
          // Same funnel as the discovery run: replaying a real SIGSEGV
          // in-process would kill the tester itself.
          const minimpi::RunResult rerun = execute(confirm);
          bug.flaky = rerun.job_outcome() != bug.outcome;
        }
        m_bugs.inc();
        result.bugs.push_back(std::move(bug));
      } else {
        ++known->occurrences;
      }
    }

    // ---- interleaving replays don't drive the search ----
    // The reordered matching's job was its outcome verdict and any new
    // coverage, both recorded above (plus the alternatives it forked).
    // The strategy neither observes its path nor solves from it; the
    // already-planned input-driven test runs on the next iteration.
    if (pending) {
      {
        const auto live = live_lock();
        result.iterations.push_back(rec);
      }
      if (session) session->append_iteration(rec);
      note_iteration(rec, named_inputs, rec.covered_branches - covered_before);
      if (bug_budget_hit()) {
        obs::JournalEvent(journal, "bug_budget_exhausted", iter)
            .num("bugs", static_cast<std::int64_t>(result.bugs.size()));
        break;
      }
      if (end_of_iteration(iter)) {
        halted = true;
        break;
      }
      continue;
    }

    // ---- graceful degradation: the focus died before recording ----
    // A fault (often injected) killed the focus before any symbolic branch
    // was logged, so this run can't drive the search.  Re-plan the same
    // test with the focus moved to another rank instead of wasting the
    // iteration; bounded so a fault on EVERY rank still terminates.
    const bool focus_dead =
        run.focus >= 0 &&
        static_cast<std::size_t>(run.focus) < run.ranks.size() &&
        run.ranks[run.focus].outcome != rt::Outcome::kOk;
    if (focus_dead && focus_log.path.empty() && plan.nprocs > 1 &&
        consecutive_replans < plan.nprocs - 1) {
      {
        const auto live = live_lock();
        result.iterations.push_back(rec);
      }
      if (session) session->append_iteration(rec);
      note_iteration(rec, named_inputs, rec.covered_branches - covered_before);
      plan.focus = (plan.focus + 1) % plan.nprocs;
      ++result.focus_replans;
      ++consecutive_replans;
      if (bug_budget_hit()) break;
      if (end_of_iteration(iter)) {
        halted = true;
        break;
      }
      continue;
    }
    consecutive_replans = 0;

    // ---- two-phase switch: estimate the BoundedDFS depth bound ----
    if (two_phase && iter + 1 == options_.dfs_phase_iterations) {
      const std::size_t bound =
          options_.depth_bound > 0
              ? static_cast<std::size_t>(options_.depth_bound)
              : static_cast<std::size_t>(
                    static_cast<double>(result.max_constraint_set) *
                        options_.bound_slack +
                    10);
      result.depth_bound_used = bound;
      scfg.kind = SearchKind::kBoundedDfs;
      scfg.bound = bound;
      strategy = make_strategy(scfg);
      bounded_phase = true;
      pending_depth.reset();  // root the new strategy at this path
    }

    strategy->observe(focus_log.path,
                      next_is_restart ? std::nullopt : pending_depth);
    next_is_restart = false;
    pending_depth.reset();

    // ---- pick and solve the next constraint set (§II-A) ----
    // Thread CPU time, not wall clock: the solve phase runs entirely on
    // this thread, and CPU time neither counts retry-backoff sleeps nor
    // double-counts when parallel workers overlap (see DESIGN.md).
    const double solve_cpu_start = obs::thread_cpu_seconds();
    if (board != nullptr) {
      board->worker_phase(0, iter, obs::WorkerPhase::kSolve);
    }
    obs::ObsSpan plan_span(obs::Cat::kStrategy, "plan_next_test");
    bool planned = false;
    while (auto cand = strategy->next()) {
      // Insert the MPI-semantics constraints before the negated constraint
      // (which must stay last for incremental solving).
      std::vector<solver::Predicate> preds = std::move(cand->constraints);
      const solver::Predicate negated = std::move(preds.back());
      preds.pop_back();
      for (auto& p : framework.mpi_constraints(focus_log)) {
        preds.push_back(std::move(p));
      }
      preds.push_back(negated);

      const std::int64_t nodes_before = rec.solver_nodes;
      solver::SolveResult solved = the_solver.solve_incremental(
          preds, framework.domains(), focus_log.inputs_used, cache);
      rec.solver_nodes += solved.nodes_searched;
      // Node-budget exhaustion is "unknown", not UNSAT: back off and retry
      // the same query with a doubled budget before treating it as failed.
      for (int attempt = 0;
           !solved.sat && solved.budget_exhausted &&
           attempt < options_.retry_max;
           ++attempt) {
        obs::instant(obs::Cat::kChaosRetry, "solver_retry", "attempt",
                     attempt);
        obs::JournalEvent(journal, "retry", iter)
            .str("kind", "solver")
            .num("attempt", attempt)
            .num("target", cand->target);
        m_retries.inc();
        backoff(attempt);
        ++result.transient_retries;
        ++iter_retries;
        solver::Solver relaxed(
            {options_.solver_node_budget << (attempt + 1)});
        solved = relaxed.solve_incremental(preds, framework.domains(),
                                           focus_log.inputs_used, cache);
        rec.solver_nodes += solved.nodes_searched;
      }
      obs::JournalEvent(journal, "solve", iter)
          .num("depth", static_cast<std::int64_t>(cand->depth))
          .num("target", cand->target)
          .boolean("sat", solved.sat)
          .boolean("budget_exhausted", solved.budget_exhausted)
          .num("nodes", rec.solver_nodes - nodes_before)
          .num("slice_size", static_cast<std::int64_t>(solved.slice_size));
      if (solved.sat) {
        ++tele_sat;
      } else if (solved.budget_exhausted) {
        ++tele_budget;
      } else {
        ++tele_unsat;
      }
      if (solved.sat) {
        plan = framework.plan_next_test(solved, focus_log, plan);
        strategy->accepted(*cand);
        pending_depth = cand->depth;
        failures = 0;
        planned = true;
        break;
      }
      // The negation failed: remember the nearest miss for the branch it
      // was steering toward (UNSAT keeps the rendered constraint around
      // for --explain's never-taken report).
      if (cand->target >= 0) {
        const auto live = live_lock();
        ledger.record_solve_failure(cand->target, iter, negated.to_string(),
                                    solved.budget_exhausted);
      }
      if (++failures >= options_.restart_after_failures) break;
    }
    rec.solve_seconds = obs::thread_cpu_seconds() - solve_cpu_start;
    rec.retries = iter_retries;
    m_solve_us.observe(static_cast<std::int64_t>(rec.solve_seconds * 1e6));
    tele_solve_us += static_cast<std::int64_t>(rec.solve_seconds * 1e6);
    m_solver_nodes.observe(rec.solver_nodes);
    tele_frontier =
        planned ? static_cast<std::int64_t>(rec.constraint_set_size) : 0;
    {
      const auto live = live_lock();
      result.iterations.push_back(rec);
    }
    if (session) session->append_iteration(rec);
    note_iteration(rec, named_inputs, rec.covered_branches - covered_before);

    if (!planned) {
      // Strategy exhausted or solver stuck: restart with random inputs.
      ++result.restarts;
      m_restarts.inc();
      plan.inputs.clear();
      plan.nprocs = options_.initial_nprocs;
      plan.focus = options_.initial_focus;
      failures = 0;
      next_is_restart = true;
    }

    if (bug_budget_hit()) {
      obs::JournalEvent(journal, "bug_budget_exhausted", iter)
          .num("bugs", static_cast<std::int64_t>(result.bugs.size()));
      break;
    }
    if (end_of_iteration(iter)) {
      halted = true;
      break;
    }
  }

  // Flush the final delta whatever way the loop ended (bug budget, time
  // budget, stop grant): the work source retains it for reconciliation
  // even when the coordinator is unreachable right now.
  report_work(/*final_report=*/true);

  // Final stall verdict for the report and --explain: one more sample at
  // the terminal state (the loop may have exited between samples).
  {
    const obs::Diagnosis diag = diagnosis_engine.update(
        diagnosis_input(),
        static_cast<std::int64_t>(coverage.covered_branches()),
        result.iterations.empty() ? 0
                                  : result.iterations.back().iteration);
    result.stall_kind = obs::to_string(diag.kind);
    result.stall_detail = diag.detail;
    result.stalled_seconds = diag.stalled_seconds;
  }

  if (board != nullptr) {
    board->worker_phase(0, result.iterations.empty()
                               ? -1
                               : result.iterations.back().iteration,
                        obs::WorkerPhase::kDone);
  }
  result.covered_branches = coverage.covered_branches();
  result.reachable_branches = coverage.reachable_branches();
  result.total_branches = coverage.total_branches();
  result.coverage_rate = coverage.rate();
  result.function_coverage = coverage.per_function();
  if (cache != nullptr) {
    result.solver_cache_hits = static_cast<std::size_t>(cache->hits());
    result.solver_cache_misses = static_cast<std::size_t>(cache->misses());
  }
  result.total_seconds = elapsed();
  result.total_exec_seconds = 0.0;
  result.total_solve_seconds = 0.0;
  for (const IterationRecord& r : result.iterations) {
    result.total_exec_seconds += r.exec_seconds;
    result.total_solve_seconds += r.solve_seconds;
    if (r.outcome == rt::Outcome::kDeadlock) ++result.deadlocks_found;
    if (r.outcome == rt::Outcome::kOrphanMessage) {
      ++result.orphan_messages_found;
    }
  }
  result.interleavings_enqueued = interleavings.enqueued;
  result.interleavings_run = interleavings.run_count;
  result.interleavings_pruned = interleavings.pruned;
  result.interleavings_capped = interleavings.capped;
  // A simulated kill stops before the summary files exist, exactly like a
  // real SIGKILL would; only the checkpoint survives (end_of_iteration
  // already exported the observability artifacts with it).
  if (halted) return result;
  if (session) {
    session->write_summary(result);
    session->write_ledger(ledger, *target_.table);
    session->write_coverage_timeline(result.iterations);
    if (options_.checkpoint_interval > 0) {
      save_checkpoint(options_.iterations);
    }
  }
  campaign_span.finish();  // close before the dump so the span is in it
  journal.close();
  export_obs();
  return result;
}

}  // namespace compi
