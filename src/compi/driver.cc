#include "compi/driver.h"

#include <algorithm>
#include <chrono>

#include "compi/session.h"
#include "minimpi/launcher.h"
#include "solver/solver.h"

namespace compi {
namespace {

std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t salt) {
  std::uint64_t x = seed ^ (salt * 0x9e3779b97f4a7c15ULL);
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Two failures are the same bug when their messages differ only in
// concrete quantities (indices, sizes vary with the triggering inputs).
std::string bug_signature(const std::string& message) {
  std::string out;
  out.reserve(message.size());
  for (char c : message) {
    if (c < '0' || c > '9') out.push_back(c);
  }
  return out;
}

}  // namespace

Campaign::Campaign(const TargetInfo& target, CampaignOptions options)
    : target_(target), options_(std::move(options)) {}

CampaignResult Campaign::run() {
  using Clock = std::chrono::steady_clock;
  const auto campaign_start = Clock::now();
  const auto elapsed = [&] {
    return std::chrono::duration<double>(Clock::now() - campaign_start)
        .count();
  };

  CampaignResult result;
  rt::VarRegistry registry;
  CoverageTracker coverage(*target_.table);
  Framework framework(registry, options_.max_procs, options_.framework,
                      options_.conflict_resolution);
  std::optional<SessionWriter> session;
  if (!options_.log_dir.empty()) session.emplace(options_.log_dir);
  solver::Solver the_solver({options_.solver_node_budget});

  TestPlan plan;
  plan.nprocs = options_.initial_nprocs;
  plan.focus = options_.initial_focus;

  // Two-phase search (paper §II-B): pure DFS for the first
  // dfs_phase_iterations, then BoundedDFS with a bound derived from the
  // longest observed constraint set.  Other strategies run single-phase.
  const bool two_phase = options_.search == SearchKind::kBoundedDfs;
  StrategyConfig scfg;
  scfg.kind = two_phase ? SearchKind::kDfs : options_.search;
  scfg.seed = options_.seed;
  scfg.table = target_.table;
  scfg.coverage = &coverage;
  std::unique_ptr<SearchStrategy> strategy = make_strategy(scfg);

  std::optional<std::size_t> pending_depth;  // depth of the accepted flip
  bool next_is_restart = true;               // the first run is a "restart"
  int failures = 0;

  for (int iter = 0; iter < options_.iterations; ++iter) {
    if (options_.time_budget_seconds > 0 &&
        elapsed() >= options_.time_budget_seconds) {
      break;
    }

    // ---- launch the planned test (§III-D) ----
    minimpi::LaunchSpec spec;
    spec.program = target_.program;
    spec.nprocs = plan.nprocs;
    spec.focus = plan.focus;
    spec.one_way = options_.one_way;
    spec.registry = &registry;
    spec.inputs = &plan.inputs;
    spec.rng_seed = mix_seed(options_.seed, static_cast<std::uint64_t>(iter));
    spec.step_budget = options_.step_budget;
    spec.reduction = options_.reduction;
    spec.mark_mpi_vars = options_.framework;
    spec.timeout = options_.test_timeout;

    const minimpi::RunResult run = minimpi::launch(spec, *target_.table);
    if (session) session->write_iteration(iter, run);

    // ---- record coverage (all recorders — or focus only for No_Fwk) ----
    if (options_.framework) {
      coverage.merge(run.merged_coverage());
    } else {
      coverage.merge(run.focus_log().covered);
    }

    const rt::TestLog& focus_log = run.focus_log();
    result.max_constraint_set =
        std::max(result.max_constraint_set, focus_log.path.size());

    IterationRecord rec;
    rec.iteration = iter;
    rec.nprocs = plan.nprocs;
    rec.focus = plan.focus;
    rec.outcome = run.job_outcome();
    rec.constraint_set_size = focus_log.path.size();
    rec.covered_branches = coverage.covered_branches();
    rec.exec_seconds = run.wall_seconds;
    rec.restart = next_is_restart;

    // ---- log error-inducing inputs (§V) ----
    if (rt::is_fault(rec.outcome)) {
      const std::string msg = run.job_message();
      const std::string sig = bug_signature(msg);
      auto known = std::find_if(
          result.bugs.begin(), result.bugs.end(),
          [&](const BugRecord& b) { return bug_signature(b.message) == sig; });
      if (known == result.bugs.end()) {
        BugRecord bug;
        bug.first_iteration = iter;
        bug.occurrences = 1;
        bug.outcome = rec.outcome;
        bug.message = msg;
        bug.inputs = focus_log.inputs_used;
        for (const auto& [var, value] : bug.inputs) {
          bug.named_inputs[registry.meta(var).key] = value;
        }
        bug.nprocs = plan.nprocs;
        bug.focus = plan.focus;
        result.bugs.push_back(std::move(bug));
      } else {
        ++known->occurrences;
      }
    }

    // ---- two-phase switch: estimate the BoundedDFS depth bound ----
    if (two_phase && iter + 1 == options_.dfs_phase_iterations) {
      const std::size_t bound =
          options_.depth_bound > 0
              ? static_cast<std::size_t>(options_.depth_bound)
              : static_cast<std::size_t>(
                    static_cast<double>(result.max_constraint_set) *
                        options_.bound_slack +
                    10);
      result.depth_bound_used = bound;
      scfg.kind = SearchKind::kBoundedDfs;
      scfg.bound = bound;
      strategy = make_strategy(scfg);
      pending_depth.reset();  // root the new strategy at this path
    }

    strategy->observe(focus_log.path,
                      next_is_restart ? std::nullopt : pending_depth);
    next_is_restart = false;
    pending_depth.reset();

    // ---- pick and solve the next constraint set (§II-A) ----
    const auto solve_start = Clock::now();
    bool planned = false;
    while (auto cand = strategy->next()) {
      // Insert the MPI-semantics constraints before the negated constraint
      // (which must stay last for incremental solving).
      std::vector<solver::Predicate> preds = std::move(cand->constraints);
      const solver::Predicate negated = std::move(preds.back());
      preds.pop_back();
      for (auto& p : framework.mpi_constraints(focus_log)) {
        preds.push_back(std::move(p));
      }
      preds.push_back(negated);

      const solver::SolveResult solved = the_solver.solve_incremental(
          preds, framework.domains(), focus_log.inputs_used);
      if (solved.sat) {
        plan = framework.plan_next_test(solved, focus_log, plan);
        strategy->accepted(*cand);
        pending_depth = cand->depth;
        failures = 0;
        planned = true;
        break;
      }
      if (++failures >= options_.restart_after_failures) break;
    }
    rec.solve_seconds =
        std::chrono::duration<double>(Clock::now() - solve_start).count();
    result.iterations.push_back(rec);

    if (!planned) {
      // Strategy exhausted or solver stuck: restart with random inputs.
      ++result.restarts;
      plan.inputs.clear();
      plan.nprocs = options_.initial_nprocs;
      plan.focus = options_.initial_focus;
      failures = 0;
      next_is_restart = true;
    }
  }

  result.covered_branches = coverage.covered_branches();
  result.reachable_branches = coverage.reachable_branches();
  result.total_branches = coverage.total_branches();
  result.coverage_rate = coverage.rate();
  result.function_coverage = coverage.per_function();
  result.total_seconds = elapsed();
  for (const IterationRecord& r : result.iterations) {
    result.total_exec_seconds += r.exec_seconds;
    result.total_solve_seconds += r.solve_seconds;
  }
  if (session) session->write_summary(result);
  return result;
}

}  // namespace compi
