// Search strategies: which constraint to negate next (paper §II-B).
//
// CREST ships four strategies; COMPI adopts BoundedDFS with a two-phase
// bound estimation because MPI programs front-load a deep sanity check that
// only a systematic in-path-order search can traverse.  All four are
// implemented here, plus unbounded DFS, so Fig. 4 can be regenerated.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <memory>
#include <optional>
#include <random>
#include <vector>

#include "compi/coverage.h"
#include "compi/options.h"
#include "runtime/branch_table.h"
#include "solver/predicate.h"
#include "symbolic/path.h"

namespace compi {

/// A proposed next test: follow the previous path up to `depth`, then take
/// the other side.  `constraints` is the path prefix with the negated
/// constraint LAST (the convention Solver::solve_incremental expects).
struct Candidate {
  std::vector<solver::Predicate> constraints;
  std::size_t depth = 0;
  /// Branch the negation steers toward — the UNTAKEN arm of the flipped
  /// path entry.  -1 when unknown; the attribution ledger keys solver
  /// near-misses on it.
  sym::BranchId target = -1;
};

struct StrategyStats {
  std::size_t candidates_issued = 0;
  std::size_t prediction_failures = 0;
};

class SearchStrategy {
 public:
  virtual ~SearchStrategy() = default;

  /// Reports the focus path of a completed execution.  `flipped_depth` is
  /// the depth of the accepted candidate that produced this run, or nullopt
  /// for an initial/restart run.
  virtual void observe(const sym::Path& path,
                       std::optional<std::size_t> flipped_depth) = 0;

  /// Next constraint negation to try; nullopt when the strategy is out of
  /// ideas (the driver then restarts with fresh random inputs).  Rejected
  /// (UNSAT) candidates are simply not re-proposed; call again for the next.
  [[nodiscard]] virtual std::optional<Candidate> next() = 0;

  /// Notification that the previous candidate solved SAT and will run.
  virtual void accepted(const Candidate& candidate) { (void)candidate; }

  [[nodiscard]] virtual const char* name() const = 0;
  [[nodiscard]] const StrategyStats& stats() const { return stats_; }

  /// Checkpoint support: serializes the strategy's full mutable state
  /// (pending frames/queues, RNG engines, stats) as line-oriented text, and
  /// restores it so a resumed campaign proposes exactly the candidates the
  /// killed one would have.  `load_state` returns false on parse errors
  /// (the caller then falls back to a fresh campaign).
  virtual void save_state(std::ostream& os) const;
  [[nodiscard]] virtual bool load_state(std::istream& is);

 protected:
  StrategyStats stats_;
};

struct StrategyConfig {
  SearchKind kind = SearchKind::kBoundedDfs;
  /// Depth bound for BoundedDFS (ignored by others); SIZE_MAX = unbounded.
  std::size_t bound = static_cast<std::size_t>(-1);
  std::uint64_t seed = 1;
  /// For the CFG strategy: static branch table and live coverage.
  const rt::BranchTable* table = nullptr;
  const CoverageTracker* coverage = nullptr;
};

[[nodiscard]] std::unique_ptr<SearchStrategy> make_strategy(
    const StrategyConfig& config);

}  // namespace compi
