// Small fixed-width table / CSV helpers shared by the bench binaries, plus
// the per-phase campaign profile (paper Table 4-style cost accounting).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace compi {

struct CampaignResult;

/// Where one campaign phase's time went, with per-iteration latency
/// percentiles (microseconds; < 0 when not applicable, e.g. the synthetic
/// "overhead" phase has no per-iteration samples).
struct PhaseStats {
  std::string name;
  double total_seconds = 0.0;
  double share = 0.0;  // fraction of campaign wall time, [0, 1]
  double p50_us = -1.0;
  double p95_us = -1.0;
  double max_us = -1.0;
};

/// Campaign wall time split into execute / solve / overhead (everything
/// else: instrumentation replay, planning, logging).  Shares sum to ~1.
struct PhaseBreakdown {
  std::vector<PhaseStats> phases;
  double total_seconds = 0.0;
};

[[nodiscard]] PhaseBreakdown compute_phase_breakdown(
    const CampaignResult& result);

/// Renders the breakdown as a TablePrinter table ("Phase profile").
void print_phase_breakdown(std::ostream& os, const PhaseBreakdown& b);

/// One-line sandbox (--isolate) accounting: forked runs, real-signal and
/// hang kills, bytes salvaged from dead children.  Prints nothing when the
/// campaign never forked a child.
void print_sandbox_summary(std::ostream& os, const CampaignResult& result);

/// One-line wildcard-matchings (--explore-matchings) accounting:
/// interleavings enqueued/run/pruned/capped plus deadlocks and orphan
/// messages found.  Prints nothing when the campaign never explored an
/// alternative matching and found no ordering bug.
void print_matchings_summary(std::ostream& os, const CampaignResult& result);

/// Minimal fixed-width table printer for paper-style rows.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  void print(std::ostream& os) const;

  /// Formats a double with `digits` decimals.
  [[nodiscard]] static std::string num(double v, int digits = 1);
  /// Formats a ratio as a percentage string, e.g. 0.847 -> "84.7%".
  [[nodiscard]] static std::string pct(double ratio, int digits = 1);
  /// Human-readable byte count, e.g. 104857600 -> "100.0M".
  [[nodiscard]] static std::string bytes(std::size_t n);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace compi
