// Small fixed-width table / CSV helpers shared by the bench binaries.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace compi {

/// Minimal fixed-width table printer for paper-style rows.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  void print(std::ostream& os) const;

  /// Formats a double with `digits` decimals.
  [[nodiscard]] static std::string num(double v, int digits = 1);
  /// Formats a ratio as a percentage string, e.g. 0.847 -> "84.7%".
  [[nodiscard]] static std::string pct(double ratio, int digits = 1);
  /// Human-readable byte count, e.g. 104857600 -> "100.0M".
  [[nodiscard]] static std::string bytes(std::size_t n);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace compi
