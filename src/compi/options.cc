#include "compi/options.h"

namespace compi {

const char* to_string(SearchKind k) {
  switch (k) {
    case SearchKind::kBoundedDfs: return "BoundedDFS";
    case SearchKind::kDfs: return "DFS";
    case SearchKind::kRandomBranch: return "RandomBranch";
    case SearchKind::kUniformRandom: return "UniformRandom";
    case SearchKind::kCfg: return "CFG";
    case SearchKind::kGenerational: return "Generational";
  }
  return "?";
}

}  // namespace compi
