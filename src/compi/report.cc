#include "compi/report.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "compi/driver.h"
#include "obs/metrics.h"

namespace compi {

PhaseBreakdown compute_phase_breakdown(const CampaignResult& result) {
  PhaseBreakdown b;
  b.total_seconds = result.total_seconds;

  std::vector<double> exec_us;
  std::vector<double> solve_us;
  exec_us.reserve(result.iterations.size());
  solve_us.reserve(result.iterations.size());
  for (const IterationRecord& r : result.iterations) {
    exec_us.push_back(r.exec_seconds * 1e6);
    solve_us.push_back(r.solve_seconds * 1e6);
  }

  const auto phase = [&](std::string name, double total,
                         const std::vector<double>& samples) {
    PhaseStats p;
    p.name = std::move(name);
    p.total_seconds = total;
    p.share = b.total_seconds > 0.0 ? total / b.total_seconds : 0.0;
    if (!samples.empty()) {
      p.p50_us = obs::percentile(samples, 0.50);
      p.p95_us = obs::percentile(samples, 0.95);
      p.max_us = *std::max_element(samples.begin(), samples.end());
    }
    return p;
  };

  b.phases.push_back(
      phase("execute", result.total_exec_seconds, exec_us));
  b.phases.push_back(phase("solve", result.total_solve_seconds, solve_us));
  // Everything the driver does between runs: planning, instrumentation
  // replay, coverage merging, logging.  Clamped at zero — with sub-ms
  // iterations the measured phases can overshoot the wall clock slightly.
  const double overhead =
      std::max(0.0, b.total_seconds - result.total_exec_seconds -
                        result.total_solve_seconds);
  b.phases.push_back(phase("overhead", overhead, {}));
  return b;
}

void print_phase_breakdown(std::ostream& os, const PhaseBreakdown& b) {
  TablePrinter table({"phase", "seconds", "share", "p50(us)", "p95(us)",
                      "max(us)"});
  const auto us = [](double v) {
    return v < 0.0 ? std::string("-") : TablePrinter::num(v, 0);
  };
  for (const PhaseStats& p : b.phases) {
    table.add_row({p.name, TablePrinter::num(p.total_seconds, 3),
                   TablePrinter::pct(p.share), us(p.p50_us), us(p.p95_us),
                   us(p.max_us)});
  }
  table.print(os);
}

void print_sandbox_summary(std::ostream& os, const CampaignResult& result) {
  if (result.sandbox_runs == 0 && result.batch_runs == 0) return;
  os << "sandbox           : " << result.sandbox_runs << " forked runs, "
     << result.sandbox_signal_kills << " signal kills, "
     << result.sandbox_hang_kills << " hang kills, "
     << TablePrinter::bytes(result.sandbox_harvest_bytes) << " harvested\n";
  if (result.warm_spawns == 0 && result.cold_forks == 0 &&
      result.batch_runs == 0) {
    return;
  }
  os << "fork server       : " << result.warm_spawns << " warm spawns, "
     << result.cold_forks << " cold forks, " << result.fork_server_restarts
     << " restarts, " << result.batch_runs << " batch runs\n";
}

void print_matchings_summary(std::ostream& os, const CampaignResult& result) {
  if (result.interleavings_enqueued == 0 && result.deadlocks_found == 0 &&
      result.orphan_messages_found == 0) {
    return;
  }
  os << "matchings         : " << result.interleavings_enqueued
     << " interleavings enqueued, " << result.interleavings_run << " run, "
     << result.interleavings_pruned << " pruned, "
     << result.interleavings_capped << " capped; " << result.deadlocks_found
     << " deadlocks, " << result.orphan_messages_found
     << " orphan messages\n";
}

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void TablePrinter::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      os << "| " << std::left << std::setw(static_cast<int>(widths[c]))
         << (c < row.size() ? row[c] : "") << ' ';
    }
    os << "|\n";
  };
  print_row(headers_);
  for (std::size_t c = 0; c < widths.size(); ++c) {
    os << '|' << std::string(widths[c] + 2, '-');
  }
  os << "|\n";
  for (const auto& row : rows_) print_row(row);
}

std::string TablePrinter::num(double v, int digits) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(digits) << v;
  return os.str();
}

std::string TablePrinter::pct(double ratio, int digits) {
  return num(ratio * 100.0, digits) + '%';
}

std::string TablePrinter::bytes(std::size_t n) {
  const double d = static_cast<double>(n);
  if (n >= 1024ull * 1024 * 1024) return num(d / (1024.0 * 1024 * 1024)) + "G";
  if (n >= 1024ull * 1024) return num(d / (1024.0 * 1024)) + "M";
  if (n >= 1024) return num(d / 1024.0) + "K";
  return num(d, 0) + "B";
}

}  // namespace compi
