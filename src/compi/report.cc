#include "compi/report.h"

#include <iomanip>
#include <ostream>
#include <sstream>

namespace compi {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void TablePrinter::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      os << "| " << std::left << std::setw(static_cast<int>(widths[c]))
         << (c < row.size() ? row[c] : "") << ' ';
    }
    os << "|\n";
  };
  print_row(headers_);
  for (std::size_t c = 0; c < widths.size(); ++c) {
    os << '|' << std::string(widths[c] + 2, '-');
  }
  os << "|\n";
  for (const auto& row : rows_) print_row(row);
}

std::string TablePrinter::num(double v, int digits) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(digits) << v;
  return os.str();
}

std::string TablePrinter::pct(double ratio, int digits) {
  return num(ratio * 100.0, digits) + '%';
}

std::string TablePrinter::bytes(std::size_t n) {
  const double d = static_cast<double>(n);
  if (n >= 1024ull * 1024 * 1024) return num(d / (1024.0 * 1024 * 1024)) + "G";
  if (n >= 1024ull * 1024) return num(d / (1024.0 * 1024)) + "M";
  if (n >= 1024) return num(d / 1024.0) + "K";
  return num(d, 0) + "B";
}

}  // namespace compi
