#include "compi/fixed_run.h"

namespace compi {

minimpi::RunResult run_fixed(const TargetInfo& target,
                             const std::map<std::string, std::int64_t>& inputs,
                             const FixedRunOptions& options,
                             rt::VarRegistry* registry) {
  rt::VarRegistry local;
  rt::VarRegistry& reg = registry != nullptr ? *registry : local;

  solver::Assignment assignment;
  for (const auto& [key, value] : inputs) {
    assignment[reg.intern(key, rt::VarKind::kRegular)] = value;
  }

  minimpi::LaunchSpec spec;
  spec.program = target.program;
  spec.nprocs = options.nprocs;
  spec.focus = options.focus;
  spec.one_way = options.one_way;
  spec.registry = &reg;
  spec.inputs = &assignment;
  spec.rng_seed = options.seed;
  spec.step_budget = options.step_budget;
  spec.reduction = options.reduction;
  spec.timeout = options.timeout;
  return minimpi::launch(spec, *target.table);
}

}  // namespace compi
