// A testable target program: what the instrumentation phase hands COMPI.
#pragma once

#include <string>

#include "minimpi/launcher.h"
#include "runtime/branch_table.h"

namespace compi {

/// One instrumented SPMD program: its static branch table (the analog of
/// the instrumenter's `branches` file) and its entry point, plus complexity
/// metadata for Table III.
struct TargetInfo {
  std::string name;
  const rt::BranchTable* table = nullptr;
  minimpi::Program program;
  /// SLOC of this reproduction's target module (Table III context; the
  /// paper column lists the original programs' SLOCCount values).
  int sloc = 0;
  int paper_sloc = 0;
  /// Default input cap N_C used by the experiments (paper §VI).
  int default_cap = 0;
};

}  // namespace compi
