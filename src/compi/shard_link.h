// The shard side of the coordinator protocol: a WorkSource over TCP.
//
// A ShardLink connects a campaign engine (--connect=HOST:PORT) to a
// `compi coordinate` process.  acquire() pulls time-bounded leases and
// hands the engine one iteration of quota at a time; report() uploads
// full-state deltas (coverage, bugs, ledger) on a batched cadence; a
// background thread heartbeats to keep leases alive and pulls the
// coordinator's coverage broadcast back for take_remote_coverage().
//
// Failure behaviour (the whole point): every socket error marks the link
// disconnected and schedules a reconnect with exponential backoff plus
// deterministic jitter.  After `standalone_after_failures` consecutive
// failures the link DEGRADES: acquire() returns true unconditionally and
// the campaign continues standalone — local frontier, local checkpoint —
// while the background thread keeps retrying forever.  When the
// coordinator returns, the link re-handshakes and reconciles by uploading
// its full local state (deltas are cumulative and idempotent, so nothing
// is lost or double-counted), then resumes the lease protocol.
//
// Thread model: one mutex guards everything, including socket I/O (the
// socket is strictly request/response, so a transaction is atomic under
// the lock).  acquire() releases the lock while waiting; the heartbeat
// thread wakes every ~50ms.  Safe for concurrent calls from parallel
// campaign workers.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "compi/work_source.h"

namespace compi {

struct ShardLinkOptions {
  /// Coordinator address: "host:port", ":port", or "port" (loopback).
  std::string connect;
  /// Human-chosen shard name; the wire identity is name@token where the
  /// token is minted per process (see coord_protocol.h).
  std::string name = "shard";
  /// Campaign seed, reported in the Hello for the coordinator's logs.
  std::uint64_t seed = 0;
  int heartbeat_ms = 1000;
  /// Socket connect/recv/send timeout.
  int io_timeout_ms = 5000;
  int reconnect_initial_ms = 100;
  int reconnect_max_ms = 3000;
  /// Consecutive connection failures before degrading to standalone mode.
  int standalone_after_failures = 5;
  /// Transmit a delta at least every N report() calls even when nothing
  /// changed (coverage/bug changes and lease exhaustion transmit at once).
  int report_every = 4;
  /// Poll cadence while waiting for a lease or a reconnect.
  int lease_wait_poll_ms = 50;
};

class ShardLink final : public WorkSource {
 public:
  explicit ShardLink(ShardLinkOptions options);
  ~ShardLink() override;  ///< stops the background thread
  ShardLink(const ShardLink&) = delete;
  ShardLink& operator=(const ShardLink&) = delete;

  /// Starts the background thread and attempts the first connection.
  /// Returns whether that first attempt succeeded — false is NOT fatal:
  /// the link keeps retrying and the campaign runs standalone meanwhile.
  bool start();

  /// Flushes the final delta and sends Finished (clean departure).  Call
  /// after the campaign loop returns; safe when disconnected (no-op).
  void finish();

  // ---- WorkSource ----
  [[nodiscard]] bool acquire() override;
  void report(const WorkDelta& delta) override;
  [[nodiscard]] std::vector<sym::BranchId> take_remote_coverage() override;
  [[nodiscard]] std::vector<std::uint64_t> take_remote_interleavings()
      override;

  // ---- introspection (tests, CLI logging) ----
  [[nodiscard]] bool connected() const;
  /// Operating standalone after repeated connection failures.
  [[nodiscard]] bool standalone() const;
  /// The coordinator declared the global budget done.
  [[nodiscard]] bool stopped() const;
  /// The wire identity ("name@token").
  [[nodiscard]] std::string key() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace compi
