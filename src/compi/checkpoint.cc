#include "compi/checkpoint.h"

#include <algorithm>
#include <charconv>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>

namespace compi::ckpt {

std::string read_tail(std::istream& is) {
  std::string line;
  if (is.peek() == ' ') is.get();
  std::getline(is, line);
  return line;
}

bool expect(std::istream& is, std::string_view tag) {
  std::string tok;
  if (!(is >> tok) || tok != tag) {
    is.setstate(std::ios::failbit);
    return false;
  }
  return true;
}

namespace {

std::optional<rt::Outcome> read_outcome(std::istream& is) {
  std::string tok;
  if (!(is >> tok)) return std::nullopt;
  return rt::outcome_from_string(tok);
}

double read_double(std::istream& is) {
  std::string tok;
  is >> tok;
  double v = 0.0;
  const auto [ptr, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), v);
  if (ec != std::errc{} || ptr != tok.data() + tok.size()) {
    is.setstate(std::ios::failbit);
  }
  return v;
}

void write_assignment(std::ostream& os, const solver::Assignment& a) {
  os << a.size();
  // Sorted by variable id for a canonical (diff-able) file.
  std::vector<std::pair<solver::Var, std::int64_t>> entries(a.begin(), a.end());
  std::sort(entries.begin(), entries.end());
  for (const auto& [v, value] : entries) os << ' ' << v << ' ' << value;
}

/// Reserve clamp for counts read from disk: a corrupted (bit-flipped)
/// count must fail at parse time, not drive a multi-gigabyte allocation.
/// The read loops themselves stop at EOF, so only reserve() needs guarding.
constexpr std::size_t kMaxSaneReserve = 1 << 20;

bool read_assignment(std::istream& is, solver::Assignment& a) {
  std::size_t n = 0;
  if (!(is >> n)) return false;
  a.clear();
  a.reserve(std::min(n, kMaxSaneReserve));
  for (std::size_t i = 0; i < n; ++i) {
    solver::Var v = 0;
    std::int64_t value = 0;
    if (!(is >> v >> value)) return false;
    a[v] = value;
  }
  return true;
}

}  // namespace

void write_blob(std::ostream& os, std::string_view tag,
                const std::string& blob) {
  std::size_t lines = 0;
  for (char c : blob) lines += c == '\n' ? 1 : 0;
  if (!blob.empty() && blob.back() != '\n') ++lines;
  os << tag << ' ' << lines << '\n';
  os << blob;
  if (!blob.empty() && blob.back() != '\n') os << '\n';
}

bool read_blob(std::istream& is, std::string_view tag, std::string& blob) {
  std::size_t n = 0;
  if (!expect(is, tag) || !(is >> n)) return false;
  is.ignore(std::numeric_limits<std::streamsize>::max(), '\n');
  std::ostringstream body;
  for (std::size_t i = 0; i < n; ++i) {
    std::string line;
    if (!std::getline(is, line)) return false;
    body << line << '\n';
  }
  blob = body.str();
  return true;
}

void write_bug(std::ostream& os, const BugRecord& b) {
  os << "bug " << b.first_iteration << ' ' << b.occurrences << ' '
     << rt::to_string(b.outcome) << ' ' << b.nprocs << ' ' << b.focus << ' '
     << (b.flaky ? 1 : 0) << '\n';
  os << "msg " << escape(b.message) << '\n';
  os << "inputs ";
  write_assignment(os, b.inputs);
  os << '\n';
  os << "named " << b.named_inputs.size() << '\n';
  for (const auto& [key, value] : b.named_inputs) {
    os << value << ' ' << escape(key) << '\n';
  }
  os << "decisions " << b.decisions.size();
  for (const minimpi::MatchDecision& d : b.decisions) {
    os << ' ' << d.rank << ' ' << d.seq << ' ' << d.src;
  }
  os << '\n';
}

bool read_bug(std::istream& is, BugRecord& b) {
  int flag = 0;
  if (!expect(is, "bug") || !(is >> b.first_iteration >> b.occurrences)) {
    return false;
  }
  const auto outcome = read_outcome(is);
  if (!outcome) return false;
  b.outcome = *outcome;
  if (!(is >> b.nprocs >> b.focus >> flag)) return false;
  b.flaky = flag != 0;
  if (!expect(is, "msg")) return false;
  b.message = unescape(read_tail(is));
  if (!expect(is, "inputs") || !read_assignment(is, b.inputs)) return false;
  std::size_t named = 0;
  if (!expect(is, "named") || !(is >> named)) return false;
  for (std::size_t j = 0; j < named; ++j) {
    std::int64_t value = 0;
    if (!(is >> value)) return false;
    b.named_inputs[unescape(read_tail(is))] = value;
  }
  std::size_t ndecisions = 0;
  if (!expect(is, "decisions") || !(is >> ndecisions)) return false;
  b.decisions.reserve(std::min(ndecisions, kMaxSaneReserve));
  for (std::size_t j = 0; j < ndecisions; ++j) {
    minimpi::MatchDecision d;
    if (!(is >> d.rank >> d.seq >> d.src)) return false;
    b.decisions.push_back(d);
  }
  return true;
}

void CampaignCheckpoint::write(std::ostream& os) const {
  os << "compi-checkpoint " << kVersion << '\n';
  os << "seed " << seed << '\n';
  os << "next_iteration " << next_iteration << '\n';

  os << "plan " << plan_nprocs << ' ' << plan_focus << ' ';
  write_assignment(os, plan_inputs);
  os << '\n';
  os << "next_is_restart " << (next_is_restart ? 1 : 0) << '\n';
  os << "pending_depth ";
  if (pending_depth) {
    os << *pending_depth;
  } else {
    os << "none";
  }
  os << '\n';
  os << "failures " << failures << '\n';
  os << "consecutive_replans " << consecutive_replans << '\n';
  os << "bounded_phase " << (bounded_phase ? 1 : 0) << '\n';
  os << "counters " << restarts << ' ' << max_constraint_set << ' '
     << depth_bound_used << ' ' << transient_retries << ' ' << focus_replans
     << '\n';
  os << "sandbox " << sandbox_runs << ' ' << sandbox_signal_kills << ' '
     << sandbox_hang_kills << ' ' << sandbox_harvest_bytes << '\n';
  os << "sandbox2 " << warm_spawns << ' ' << cold_forks << ' '
     << fork_server_restarts << ' ' << batch_runs << '\n';

  os << "iterations " << iterations.size() << '\n';
  for (const IterationRecord& r : iterations) {
    os << "iter " << r.iteration << ' ' << r.nprocs << ' ' << r.focus << ' '
       << rt::to_string(r.outcome) << ' ' << r.constraint_set_size << ' '
       << r.covered_branches << ' ' << format_double(r.exec_seconds) << ' '
       << format_double(r.solve_seconds) << ' ' << (r.restart ? 1 : 0) << ' '
       << r.solver_nodes << ' ' << r.retries << ' ' << r.worker << ' '
       << r.interleaving << '\n';
  }

  os << "bugs " << bugs.size() << '\n';
  for (const BugRecord& b : bugs) write_bug(os, b);

  os << "covered " << covered.size();
  for (sym::BranchId b : covered) os << ' ' << b;
  os << '\n';

  os << "registry " << registry.size() << '\n';
  for (const rt::VarMeta& m : registry) {
    os << "var " << static_cast<int>(m.kind) << ' ' << m.domain.lo << ' '
       << m.domain.hi << ' ';
    if (m.cap) {
      os << *m.cap;
    } else {
      os << "none";
    }
    os << ' ' << m.comm_index << ' ' << escape(m.key) << '\n';
  }

  os << "hangs " << known_hang_signatures.size() << '\n';
  for (const std::string& sig : known_hang_signatures) {
    os << escape(sig) << '\n';
  }

  os << "match_frontier " << interleavings_enqueued << ' '
     << interleavings_run << ' ' << interleavings_pruned << ' '
     << interleavings_capped << ' ' << next_interleaving_id << '\n';
  os << "match_seen " << interleaving_seen.size();
  for (std::uint64_t h : interleaving_seen) os << ' ' << h;
  os << '\n';
  os << "pending_interleavings " << pending_interleavings.size() << '\n';
  for (const PendingInterleaving& p : pending_interleavings) {
    os << "pend " << p.id << ' ' << p.nprocs << ' ' << p.focus << ' '
       << p.plan.size();
    for (const minimpi::MatchDecision& d : p.plan) {
      os << ' ' << d.rank << ' ' << d.seq << ' ' << d.src;
    }
    os << ' ';
    write_assignment(os, p.inputs);
    os << '\n';
  }

  os << "strategy " << escape(strategy_name) << '\n';
  // Opaque blobs are embedded verbatim, prefixed with their line count.
  write_blob(os, "strategy_state_lines", strategy_state);
  write_blob(os, "ledger_lines", ledger_state);

  os << "workers " << workers << '\n';
  os << "cursors " << worker_cursors.size() << '\n';
  for (const WorkerCursor& w : worker_cursors) {
    os << "cursor " << w.plan_nprocs << ' ' << w.plan_focus << ' '
       << (w.next_is_restart ? 1 : 0) << ' ';
    if (w.pending_depth) {
      os << *w.pending_depth;
    } else {
      os << "none";
    }
    os << ' ' << w.failures << ' ' << w.consecutive_replans << ' '
       << (w.bounded_phase ? 1 : 0) << ' ';
    write_assignment(os, w.plan_inputs);
    os << '\n';
    os << "cursor_strategy " << escape(w.strategy_name) << '\n';
    write_blob(os, "cursor_state_lines", w.strategy_state);
  }

  os << "coord " << (is_coordinator ? 1 : 0) << '\n';
  if (is_coordinator) {
    os << "coord_counters " << coord_budget << ' ' << coord_completed << ' '
       << coord_next_lease_id << '\n';
    os << "coord_leases " << coord_leases.size() << '\n';
    for (const CoordLease& l : coord_leases) {
      os << "lease " << l.id << ' ' << l.remaining << ' ' << escape(l.shard)
         << '\n';
    }
    os << "coord_shards " << coord_shards.size() << '\n';
    for (const CoordShardCursor& s : coord_shards) {
      os << "shard " << s.iterations_completed << ' ' << s.covered_cursor
         << ' ' << escape(s.shard) << '\n';
    }
  }
  os << "end\n";
}

std::optional<CampaignCheckpoint> CampaignCheckpoint::read(std::istream& is) {
  CampaignCheckpoint c;
  int version = 0;
  if (!expect(is, "compi-checkpoint") || !(is >> version) ||
      version != kVersion) {
    return std::nullopt;
  }
  if (!expect(is, "seed") || !(is >> c.seed)) return std::nullopt;
  if (!expect(is, "next_iteration") || !(is >> c.next_iteration)) {
    return std::nullopt;
  }

  if (!expect(is, "plan") || !(is >> c.plan_nprocs >> c.plan_focus) ||
      !read_assignment(is, c.plan_inputs)) {
    return std::nullopt;
  }
  int flag = 0;
  if (!expect(is, "next_is_restart") || !(is >> flag)) return std::nullopt;
  c.next_is_restart = flag != 0;
  {
    std::string tok;
    if (!expect(is, "pending_depth") || !(is >> tok)) return std::nullopt;
    if (tok != "none") {
      std::size_t depth = 0;
      const auto [ptr, ec] =
          std::from_chars(tok.data(), tok.data() + tok.size(), depth);
      if (ec != std::errc{} || ptr != tok.data() + tok.size()) {
        return std::nullopt;
      }
      c.pending_depth = depth;
    }
  }
  if (!expect(is, "failures") || !(is >> c.failures)) return std::nullopt;
  if (!expect(is, "consecutive_replans") || !(is >> c.consecutive_replans)) {
    return std::nullopt;
  }
  if (!expect(is, "bounded_phase") || !(is >> flag)) return std::nullopt;
  c.bounded_phase = flag != 0;
  if (!expect(is, "counters") ||
      !(is >> c.restarts >> c.max_constraint_set >> c.depth_bound_used >>
        c.transient_retries >> c.focus_replans)) {
    return std::nullopt;
  }
  if (!expect(is, "sandbox") ||
      !(is >> c.sandbox_runs >> c.sandbox_signal_kills >>
        c.sandbox_hang_kills >> c.sandbox_harvest_bytes)) {
    return std::nullopt;
  }
  if (!expect(is, "sandbox2") ||
      !(is >> c.warm_spawns >> c.cold_forks >> c.fork_server_restarts >>
        c.batch_runs)) {
    return std::nullopt;
  }

  std::size_t n = 0;
  if (!expect(is, "iterations") || !(is >> n)) return std::nullopt;
  c.iterations.reserve(std::min(n, kMaxSaneReserve));
  for (std::size_t i = 0; i < n; ++i) {
    IterationRecord r;
    if (!expect(is, "iter") ||
        !(is >> r.iteration >> r.nprocs >> r.focus)) {
      return std::nullopt;
    }
    const auto outcome = read_outcome(is);
    if (!outcome) return std::nullopt;
    r.outcome = *outcome;
    if (!(is >> r.constraint_set_size >> r.covered_branches)) {
      return std::nullopt;
    }
    r.exec_seconds = read_double(is);
    r.solve_seconds = read_double(is);
    if (!(is >> flag)) return std::nullopt;
    r.restart = flag != 0;
    if (!(is >> r.solver_nodes >> r.retries >> r.worker >> r.interleaving)) {
      return std::nullopt;
    }
    c.iterations.push_back(std::move(r));
  }

  if (!expect(is, "bugs") || !(is >> n)) return std::nullopt;
  c.bugs.reserve(std::min(n, kMaxSaneReserve));
  for (std::size_t i = 0; i < n; ++i) {
    BugRecord b;
    if (!read_bug(is, b)) return std::nullopt;
    c.bugs.push_back(std::move(b));
  }

  if (!expect(is, "covered") || !(is >> n)) return std::nullopt;
  c.covered.reserve(std::min(n, kMaxSaneReserve));
  for (std::size_t i = 0; i < n; ++i) {
    sym::BranchId b = 0;
    if (!(is >> b)) return std::nullopt;
    c.covered.push_back(b);
  }

  if (!expect(is, "registry") || !(is >> n)) return std::nullopt;
  c.registry.reserve(std::min(n, kMaxSaneReserve));
  for (std::size_t i = 0; i < n; ++i) {
    rt::VarMeta m;
    int kind = 0;
    std::string cap;
    if (!expect(is, "var") ||
        !(is >> kind >> m.domain.lo >> m.domain.hi >> cap >> m.comm_index)) {
      return std::nullopt;
    }
    m.kind = static_cast<rt::VarKind>(kind);
    if (cap != "none") {
      std::int64_t value = 0;
      const auto [ptr, ec] =
          std::from_chars(cap.data(), cap.data() + cap.size(), value);
      if (ec != std::errc{} || ptr != cap.data() + cap.size()) {
        return std::nullopt;
      }
      m.cap = value;
    }
    m.key = unescape(read_tail(is));
    c.registry.push_back(std::move(m));
  }

  if (!expect(is, "hangs") || !(is >> n)) return std::nullopt;
  is.ignore(std::numeric_limits<std::streamsize>::max(), '\n');
  for (std::size_t i = 0; i < n; ++i) {
    std::string line;
    if (!std::getline(is, line)) return std::nullopt;
    c.known_hang_signatures.push_back(unescape(line));
  }

  if (!expect(is, "match_frontier") ||
      !(is >> c.interleavings_enqueued >> c.interleavings_run >>
        c.interleavings_pruned >> c.interleavings_capped >>
        c.next_interleaving_id)) {
    return std::nullopt;
  }
  if (!expect(is, "match_seen") || !(is >> n)) return std::nullopt;
  c.interleaving_seen.reserve(std::min(n, kMaxSaneReserve));
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t h = 0;
    if (!(is >> h)) return std::nullopt;
    c.interleaving_seen.push_back(h);
  }
  if (!expect(is, "pending_interleavings") || !(is >> n)) return std::nullopt;
  c.pending_interleavings.reserve(std::min(n, kMaxSaneReserve));
  for (std::size_t i = 0; i < n; ++i) {
    PendingInterleaving p;
    std::size_t plan_size = 0;
    if (!expect(is, "pend") ||
        !(is >> p.id >> p.nprocs >> p.focus >> plan_size)) {
      return std::nullopt;
    }
    p.plan.reserve(std::min(plan_size, kMaxSaneReserve));
    for (std::size_t j = 0; j < plan_size; ++j) {
      minimpi::MatchDecision d;
      if (!(is >> d.rank >> d.seq >> d.src)) return std::nullopt;
      p.plan.push_back(d);
    }
    if (!read_assignment(is, p.inputs)) return std::nullopt;
    c.pending_interleavings.push_back(std::move(p));
  }

  if (!expect(is, "strategy")) return std::nullopt;
  c.strategy_name = unescape(read_tail(is));
  if (!read_blob(is, "strategy_state_lines", c.strategy_state)) {
    return std::nullopt;
  }
  if (!read_blob(is, "ledger_lines", c.ledger_state)) return std::nullopt;

  if (!expect(is, "workers") || !(is >> c.workers)) return std::nullopt;
  if (!expect(is, "cursors") || !(is >> n)) return std::nullopt;
  // A hostile/corrupt count must not drive a giant reserve; cursors are one
  // per worker, so anything huge is garbage.
  if (n > 4096) return std::nullopt;
  c.worker_cursors.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    WorkerCursor w;
    std::string tok;
    if (!expect(is, "cursor") || !(is >> w.plan_nprocs >> w.plan_focus >>
                                   flag)) {
      return std::nullopt;
    }
    w.next_is_restart = flag != 0;
    if (!(is >> tok)) return std::nullopt;
    if (tok != "none") {
      std::size_t depth = 0;
      const auto [ptr, ec] =
          std::from_chars(tok.data(), tok.data() + tok.size(), depth);
      if (ec != std::errc{} || ptr != tok.data() + tok.size()) {
        return std::nullopt;
      }
      w.pending_depth = depth;
    }
    if (!(is >> w.failures >> w.consecutive_replans >> flag)) {
      return std::nullopt;
    }
    w.bounded_phase = flag != 0;
    if (!read_assignment(is, w.plan_inputs)) return std::nullopt;
    if (!expect(is, "cursor_strategy")) return std::nullopt;
    w.strategy_name = unescape(read_tail(is));
    if (!read_blob(is, "cursor_state_lines", w.strategy_state)) {
      return std::nullopt;
    }
    c.worker_cursors.push_back(std::move(w));
  }

  if (!expect(is, "coord") || !(is >> flag)) return std::nullopt;
  c.is_coordinator = flag != 0;
  if (c.is_coordinator) {
    if (!expect(is, "coord_counters") ||
        !(is >> c.coord_budget >> c.coord_completed >>
          c.coord_next_lease_id)) {
      return std::nullopt;
    }
    if (!expect(is, "coord_leases") || !(is >> n)) return std::nullopt;
    // Leases are one per in-flight shard request; a huge count is garbage.
    if (n > 4096) return std::nullopt;
    c.coord_leases.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      CoordLease l;
      if (!expect(is, "lease") || !(is >> l.id >> l.remaining)) {
        return std::nullopt;
      }
      l.shard = unescape(read_tail(is));
      c.coord_leases.push_back(std::move(l));
    }
    if (!expect(is, "coord_shards") || !(is >> n)) return std::nullopt;
    if (n > 4096) return std::nullopt;
    c.coord_shards.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      CoordShardCursor s;
      if (!expect(is, "shard") ||
          !(is >> s.iterations_completed >> s.covered_cursor)) {
        return std::nullopt;
      }
      s.shard = unescape(read_tail(is));
      c.coord_shards.push_back(std::move(s));
    }
  }
  if (!expect(is, "end")) return std::nullopt;
  return c;
}

}  // namespace compi::ckpt
