// The coordinator wire protocol: message types exchanged between a
// `compi coordinate` process and its `--connect` campaign shards.
//
// Transport: the serve-layer length-prefixed frames (serve/frame.h — the
// same 4-byte-LE-length + 1-byte-tag envelope as the sandbox R/E/S/V
// wire).  Payloads are line-oriented text in the checkpoint `serial::`
// dialect, so bug records and ledger blobs round-trip over TCP exactly as
// they do through snapshots.  Strict request/response: the shard sends one
// frame and reads exactly one reply; the coordinator never pushes.
//
//   shard -> coordinator             coordinator -> shard
//   'H' Hello (name, token, seed)    'W' Welcome (full-state resync)
//   'L' LeaseRequest                 'G' LeaseGrant (quota | wait | stop)
//   'D' Delta (full local state)     'A' Ack (coverage sync)
//   'B' Heartbeat (renews leases)    'A' Ack (coverage sync)
//   'F' Finished                     'A' Ack
//
// Idempotency: Delta frames carry the shard's FULL covered set, FULL bug
// list, and CUMULATIVE iteration total.  The coordinator merges by
// set-union, bug-signature dedup, and max(cumulative) — so a delta
// replayed after a reconnect, a lease re-granted after a shard death, or a
// coordinator restart from checkpoint all converge to the same global
// state.  Shard identity is `name@token` where the token is minted once
// per shard PROCESS: a reconnecting process keeps its cumulative cursor, a
// restarted (fresh-state) process gets a new cursor and counts from zero.
//
// Coverage flows back to shards as an append-ordered log: every Welcome /
// LeaseGrant / Ack carries the coordinator's covered-log suffix past the
// shard's cursor (Welcome always resets the cursor to 0 — a full resync —
// which is what makes coordinator restarts transparent).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "compi/driver.h"
#include "symbolic/path.h"

namespace compi::coord {

/// v2 adds the shard telemetry piggyback on Delta/Heartbeat frames and the
/// wall-clock field in Hello (trace clock alignment).  Hello checks the
/// version for equality, so v1 and v2 processes refuse each other cleanly.
inline constexpr int kProtocolVersion = 2;

// Frame type tags, and the valid-type sets each side hands its
// WireFrameReader (anything else marks the stream corrupt and drops the
// connection).
inline constexpr char kHello = 'H';
inline constexpr char kWelcome = 'W';
inline constexpr char kLeaseRequest = 'L';
inline constexpr char kLeaseGrant = 'G';
inline constexpr char kDelta = 'D';
inline constexpr char kHeartbeat = 'B';
inline constexpr char kFinished = 'F';
inline constexpr char kAck = 'A';
inline constexpr char kError = 'E';
inline constexpr const char* kCoordinatorAccepts = "HLDBF";
inline constexpr const char* kShardAccepts = "WGAE";

/// Coverage piggyback on every coordinator reply: branch ids and
/// interleaving hashes the shard has not seen yet, plus the global
/// progress counters (for logging and stop decisions).
struct CoverageSync {
  std::vector<sym::BranchId> covered;
  std::vector<std::uint64_t> interleaving_seen;
  std::int64_t completed = 0;
  std::int64_t budget = 0;
};

struct HelloMsg {
  int version = kProtocolVersion;
  std::string name;           ///< human-chosen shard name (--shard-name)
  std::uint64_t token = 0;    ///< minted once per shard process
  std::uint64_t seed = 0;     ///< shard campaign seed (logged, not checked)
  /// Shard wall clock (microseconds since the Unix epoch) sampled when the
  /// Hello was encoded.  The coordinator samples its own clock on receipt
  /// and journals both, giving `compi trace-merge` a per-handshake offset
  /// to align shard trace timestamps onto the coordinator's timeline.
  std::int64_t wall_us = 0;
};

/// Compact progress snapshot a shard piggybacks on Delta and Heartbeat
/// frames: everything the coordinator needs to compute iters/sec, lag, and
/// stall diagnoses without a second connection.  All counters are
/// CUMULATIVE since shard start (same idempotency contract as Delta), and
/// times are integer microseconds so the text encoding is lossless.
struct ShardTelemetry {
  bool valid = false;  ///< false = frame carried no telemetry line
  std::int64_t elapsed_us = 0;     ///< shard wall time since campaign start
  std::int64_t iterations = 0;     ///< cumulative iterations completed
  std::int64_t covered = 0;        ///< local covered-branch count
  std::int64_t frontier_depth = 0; ///< pending negation-frontier entries
  std::int64_t interleavings_pending = 0;  ///< unexplored match frontier
  std::int64_t solver_sat = 0;     ///< cumulative SAT outcomes
  std::int64_t solver_unsat = 0;   ///< cumulative UNSAT outcomes
  std::int64_t solver_budget = 0;  ///< cumulative budget-exhausted outcomes
  std::int64_t exec_us = 0;        ///< cumulative target-execution time
  std::int64_t solve_us = 0;       ///< cumulative solver time
};

struct WelcomeMsg {
  int ordinal = 0;  ///< join ordinal (stable per shard key)
  CoverageSync sync;  ///< FULL covered/seen sets — a complete resync
};

struct LeaseRequestMsg {
  std::string shard;  ///< "name@token" key from the Welcome handshake
};

/// quota > 0: lease granted.  quota == 0 && stop: global budget done,
/// wind down.  quota == 0 && !stop: budget temporarily exhausted by other
/// shards' outstanding leases — retry after wait_ms.
struct LeaseGrantMsg {
  std::uint64_t lease_id = 0;
  int quota = 0;
  bool stop = false;
  int wait_ms = 0;
  CoverageSync sync;
};

struct DeltaMsg {
  std::string shard;
  /// CUMULATIVE local iterations completed (not an increment).
  std::int64_t iterations = 0;
  /// FULL local covered set / seen hashes / bug list.
  std::vector<sym::BranchId> covered;
  std::vector<std::uint64_t> interleaving_seen;
  std::vector<BugRecord> bugs;
  /// Full CoverageLedger snapshot; empty = no ledger upload this delta.
  std::string ledger_blob;
  bool final_report = false;
  ShardTelemetry telemetry;
};

struct HeartbeatMsg {
  std::string shard;
  ShardTelemetry telemetry;
};

struct AckMsg {
  /// stop mirrors LeaseGrant: a heartbeat/delta Ack can tell the shard
  /// the campaign is over without waiting for its next lease request.
  bool stop = false;
  CoverageSync sync;
};

// ---- encode/decode ----
// Encoders render the payload text (the frame envelope is added by
// serve::append_wire_frame).  Decoders return false on any parse error —
// the caller then treats the peer as corrupt and drops the connection.

[[nodiscard]] std::string encode_hello(const HelloMsg& m);
[[nodiscard]] bool decode_hello(const std::string& payload, HelloMsg& m);

[[nodiscard]] std::string encode_welcome(const WelcomeMsg& m);
[[nodiscard]] bool decode_welcome(const std::string& payload, WelcomeMsg& m);

[[nodiscard]] std::string encode_lease_request(const LeaseRequestMsg& m);
[[nodiscard]] bool decode_lease_request(const std::string& payload,
                                        LeaseRequestMsg& m);

[[nodiscard]] std::string encode_lease_grant(const LeaseGrantMsg& m);
[[nodiscard]] bool decode_lease_grant(const std::string& payload,
                                      LeaseGrantMsg& m);

[[nodiscard]] std::string encode_delta(const DeltaMsg& m);
[[nodiscard]] bool decode_delta(const std::string& payload, DeltaMsg& m);

[[nodiscard]] std::string encode_heartbeat(const HeartbeatMsg& m);
[[nodiscard]] bool decode_heartbeat(const std::string& payload,
                                    HeartbeatMsg& m);

[[nodiscard]] std::string encode_ack(const AckMsg& m);
[[nodiscard]] bool decode_ack(const std::string& payload, AckMsg& m);

/// The shard key both sides use for cursors and lease ownership.
[[nodiscard]] std::string shard_key(const std::string& name,
                                    std::uint64_t token);

}  // namespace compi::coord
