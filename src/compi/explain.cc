#include "compi/explain.h"

#include <algorithm>
#include <charconv>
#include <fstream>
#include <iomanip>
#include <map>
#include <ostream>
#include <sstream>
#include <string_view>

#include "compi/driver.h"
#include "compi/ledger.h"
#include "obs/journal.h"

namespace compi {
namespace {

std::int64_t to_int(const std::string& cell, std::int64_t fallback) {
  std::int64_t v = 0;
  const auto [ptr, ec] =
      std::from_chars(cell.data(), cell.data() + cell.size(), v);
  if (ec != std::errc{} || ptr != cell.data() + cell.size()) return fallback;
  return v;
}

double to_double(const std::string& cell, double fallback) {
  if (cell.empty()) return fallback;
  double v = 0.0;
  const auto [ptr, ec] =
      std::from_chars(cell.data(), cell.data() + cell.size(), v);
  if (ec != std::errc{} || ptr != cell.data() + cell.size()) return fallback;
  return v;
}

std::string cell_at(const std::vector<std::string>& cells, std::size_t i) {
  return i < cells.size() ? cells[i] : std::string{};
}

/// One iterations.csv row, reduced to what the report needs.
struct IterRow {
  int iteration = 0;
  std::string outcome;
  std::size_t covered = 0;
  double exec_seconds = 0.0;
  double solve_seconds = 0.0;
  bool restart = false;
  std::int64_t solver_nodes = 0;
  int retries = 0;
  std::int64_t interleaving = -1;
};

std::vector<IterRow> read_iterations_csv(const std::filesystem::path& file) {
  std::vector<IterRow> rows;
  std::ifstream in(file);
  if (!in.is_open()) return rows;
  std::string line;
  std::getline(in, line);  // header
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const std::vector<std::string> cells = split_csv_row(line);
    IterRow row;
    row.iteration = static_cast<int>(to_int(cell_at(cells, 0), 0));
    row.outcome = cell_at(cells, 3);
    row.covered = static_cast<std::size_t>(to_int(cell_at(cells, 5), 0));
    row.exec_seconds = to_double(cell_at(cells, 6), 0.0);
    row.solve_seconds = to_double(cell_at(cells, 7), 0.0);
    row.restart = to_int(cell_at(cells, 8), 0) != 0;
    row.solver_nodes = to_int(cell_at(cells, 9), 0);
    row.retries = static_cast<int>(to_int(cell_at(cells, 10), 0));
    row.interleaving = to_int(cell_at(cells, 12), -1);
    rows.push_back(std::move(row));
  }
  return rows;
}

std::string fmt_seconds(double s) {
  std::string out = std::to_string(s);
  const auto dot = out.find('.');
  if (dot != std::string::npos && dot + 4 < out.size()) {
    out.resize(dot + 4);
  }
  return out + "s";
}

void print_timeline(std::ostream& os, const std::vector<IterRow>& iters,
                    int max_milestones) {
  // Discovery iterations: every row where coverage grew past the previous
  // maximum (restarts can only repeat coverage, never shrink the merge).
  std::vector<const IterRow*> growth;
  std::size_t prev = 0;
  for (const IterRow& row : iters) {
    if (row.covered > prev) {
      growth.push_back(&row);
      prev = row.covered;
    }
  }
  os << "Coverage timeline (" << growth.size() << " discovery iterations";
  if (max_milestones > 0 &&
      growth.size() > static_cast<std::size_t>(max_milestones)) {
    os << ", thinned to " << max_milestones;
  }
  os << "):\n";
  if (growth.empty()) {
    os << "  (no coverage recorded)\n";
    return;
  }
  // Thin evenly, always keeping the first and last discovery.
  std::vector<const IterRow*> shown;
  const std::size_t limit =
      max_milestones > 0 ? static_cast<std::size_t>(max_milestones)
                         : growth.size();
  if (growth.size() <= limit) {
    shown = growth;
  } else {
    for (std::size_t i = 0; i < limit; ++i) {
      const std::size_t idx = i * (growth.size() - 1) / (limit - 1);
      if (shown.empty() || shown.back() != growth[idx]) {
        shown.push_back(growth[idx]);
      }
    }
  }
  os << "  iteration  covered\n";
  for (const IterRow* row : shown) {
    os << "  " << std::setw(9) << row->iteration << "  " << row->covered
       << "\n";
  }
}

void print_near_misses(std::ostream& os,
                       const std::vector<LedgerCsvRow>& ledger,
                       int top_misses) {
  std::size_t never_taken = 0;
  std::vector<const LedgerCsvRow*> misses;
  for (const LedgerCsvRow& row : ledger) {
    if (row.covered) continue;
    ++never_taken;
    if (row.miss_attempts > 0) misses.push_back(&row);
  }
  std::stable_sort(misses.begin(), misses.end(),
                   [](const LedgerCsvRow* a, const LedgerCsvRow* b) {
                     return a->miss_attempts > b->miss_attempts;
                   });
  os << "Never-taken branches: " << never_taken << " (" << misses.size()
     << " with solver near misses)\n";
  const std::size_t n =
      std::min<std::size_t>(misses.size(),
                            top_misses > 0 ? static_cast<std::size_t>(
                                                 top_misses)
                                           : misses.size());
  for (std::size_t i = 0; i < n; ++i) {
    const LedgerCsvRow& row = *misses[i];
    os << "  " << row.site << " [" << row.function << "] arm=" << row.arm
       << "  attempts=" << row.miss_attempts
       << " last_iter=" << row.miss_last_iteration
       << (row.miss_budget_exhausted ? " (solver budget exhausted)"
                                     : " (UNSAT)")
       << "\n    nearest-miss constraint: " << row.miss_constraint << "\n";
  }
}

void print_rank_skew(std::ostream& os,
                     const std::vector<LedgerCsvRow>& ledger) {
  // branches[r] = distinct branches rank r has covered; hits[r] = total
  // (iteration, branch) pairs — the raw skew data from the ledger.
  std::vector<std::size_t> branches;
  std::vector<std::uint64_t> hits;
  std::size_t harvested_firsts = 0;
  for (const LedgerCsvRow& row : ledger) {
    if (!row.covered) continue;
    if (row.first_harvested) ++harvested_firsts;
    for (std::size_t r = 0; r < row.hits_per_rank.size(); ++r) {
      if (row.hits_per_rank[r] == 0) continue;
      if (branches.size() <= r) branches.resize(r + 1, 0);
      if (hits.size() <= r) hits.resize(r + 1, 0);
      ++branches[r];
      hits[r] += row.hits_per_rank[r];
    }
  }
  os << "Per-rank coverage (" << harvested_firsts
     << " first-hits recovered from sandbox harvest):\n";
  if (branches.empty()) {
    os << "  (no attributed coverage)\n";
    return;
  }
  const std::size_t max_branches =
      *std::max_element(branches.begin(), branches.end());
  os << "  rank  branches  hits\n";
  for (std::size_t r = 0; r < branches.size(); ++r) {
    os << "  " << std::setw(4) << r << "  " << std::setw(8) << branches[r]
       << "  " << hits[r];
    if (branches[r] == max_branches && max_branches > 0) os << "  <- widest";
    os << "\n";
  }
  const std::size_t min_branches =
      *std::min_element(branches.begin(), branches.end());
  if (min_branches > 0) {
    os << "  skew (widest/narrowest): "
       << static_cast<double>(max_branches) /
              static_cast<double>(min_branches)
       << "x\n";
  }
}

void print_solver_breakdown(std::ostream& os,
                            const std::vector<IterRow>& iters,
                            const std::vector<obs::ParsedEvent>& journal,
                            bool have_journal) {
  double exec_total = 0.0, solve_total = 0.0;
  std::int64_t nodes_total = 0;
  int retries_total = 0;
  for (const IterRow& row : iters) {
    exec_total += row.exec_seconds;
    solve_total += row.solve_seconds;
    nodes_total += row.solver_nodes;
    retries_total += row.retries;
  }
  os << "Solver: " << fmt_seconds(solve_total) << " solving vs "
     << fmt_seconds(exec_total) << " executing, " << nodes_total
     << " nodes, " << retries_total << " retries\n";
  if (!have_journal) {
    os << "  (no journal.jsonl — run with --journal for per-solve detail)\n";
    return;
  }
  std::int64_t solves = 0, sat = 0, unsat = 0, budget = 0;
  std::int64_t slice_sum = 0;
  std::map<std::string, std::int64_t> retry_kinds;
  std::int64_t kills = 0, chaos = 0;
  for (const obs::ParsedEvent& ev : journal) {
    if (ev.type == "solve") {
      ++solves;
      const bool is_sat = ev.boolean("sat").value_or(false);
      const bool is_budget = ev.boolean("budget_exhausted").value_or(false);
      if (is_sat) {
        ++sat;
      } else if (is_budget) {
        ++budget;
      } else {
        ++unsat;
      }
      slice_sum += ev.num("slice_size").value_or(0);
    } else if (ev.type == "retry") {
      ++retry_kinds[ev.str("kind").value_or("unknown")];
    } else if (ev.type == "sandbox_kill") {
      ++kills;
    } else if (ev.type == "chaos_armed") {
      ++chaos;
    }
  }
  os << "  solve attempts: " << solves << " (" << sat << " SAT, " << unsat
     << " UNSAT, " << budget << " budget-exhausted)\n";
  if (solves > 0) {
    os << "  mean dependency slice: "
       << static_cast<double>(slice_sum) / static_cast<double>(solves)
       << " constraints\n";
  }
  for (const auto& [kind, count] : retry_kinds) {
    os << "  retries (" << kind << "): " << count << "\n";
  }
  if (kills > 0) os << "  sandbox kills: " << kills << "\n";
  if (chaos > 0) os << "  chaos injections armed: " << chaos << "\n";
}

void print_matchings(std::ostream& os, const std::vector<IterRow>& iters,
                     const std::vector<LedgerCsvRow>& ledger,
                     const std::vector<obs::ParsedEvent>& journal) {
  std::size_t replays = 0, deadlocks = 0, orphans = 0;
  for (const IterRow& row : iters) {
    if (row.interleaving >= 0) ++replays;
    if (row.outcome == "deadlock") ++deadlocks;
    if (row.outcome == "orphan-message") ++orphans;
  }
  std::size_t interleaving_firsts = 0;
  for (const LedgerCsvRow& row : ledger) {
    if (row.covered && row.first_interleaving >= 0) ++interleaving_firsts;
  }
  std::int64_t choices = 0, wildcard_choices = 0;
  std::vector<std::string> cycles;
  for (const obs::ParsedEvent& ev : journal) {
    if (ev.type == "match_choice") {
      ++choices;
      if (ev.num("feasible").value_or(0) > 1) ++wildcard_choices;
    } else if (ev.type == "deadlock") {
      if (const auto cycle = ev.str("cycle");
          cycle && !cycle->empty() && cycles.size() < 3) {
        cycles.push_back(*cycle);
      }
    }
  }
  // Sessions that never ran the match scheduler get no section at all.
  if (replays + deadlocks + orphans + interleaving_firsts == 0 &&
      choices == 0) {
    return;
  }
  os << "\nWildcard matchings:\n"
     << "  interleaving replays: " << replays << "\n"
     << "  deadlocks: " << deadlocks << ", orphan messages: " << orphans
     << "\n"
     << "  branches first covered by a replay: " << interleaving_firsts
     << "\n";
  if (choices > 0) {
    os << "  match choices journaled: " << choices << " ("
       << wildcard_choices << " with >1 feasible sender)\n";
  }
  for (const std::string& cycle : cycles) {
    os << "  wait-for cycle: " << cycle << "\n";
  }
}

/// The diagnosis engine journals one `diagnosis` event per verdict
/// TRANSITION, so the sequence reads as the campaign's stall history and
/// the last entry is why the session ended the way it did.
void print_stall_history(std::ostream& os,
                         const std::vector<obs::ParsedEvent>& journal) {
  std::vector<const obs::ParsedEvent*> verdicts;
  for (const obs::ParsedEvent& ev : journal) {
    if (ev.type == "diagnosis") verdicts.push_back(&ev);
  }
  if (verdicts.empty()) return;
  os << "\nWhy progress stopped:\n";
  for (const obs::ParsedEvent* ev : verdicts) {
    os << "  [" << fmt_seconds(ev->real("elapsed_seconds").value_or(0.0))
       << " iter " << ev->iter() << "] " << ev->str("kind").value_or("?")
       << " — " << ev->str("detail").value_or("") << "\n";
  }
  const obs::ParsedEvent& last = *verdicts.back();
  if (last.str("kind").value_or("") == "progressing") {
    os << "  (still earning coverage when the budget ran out)\n";
  }
}

}  // namespace

std::vector<std::string> split_csv_row(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  bool quoted = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cell.push_back('"');
          ++i;
        } else {
          quoted = false;
        }
      } else {
        cell.push_back(c);
      }
    } else if (c == '"' && cell.empty()) {
      quoted = true;
    } else if (c == ',') {
      cells.push_back(std::move(cell));
      cell.clear();
    } else {
      cell.push_back(c);
    }
  }
  cells.push_back(std::move(cell));
  return cells;
}

namespace {

std::vector<LedgerCsvRow> parse_ledger_csv(std::istream& in) {
  std::vector<LedgerCsvRow> rows;
  std::string line;
  std::getline(in, line);  // header
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const std::vector<std::string> cells = split_csv_row(line);
    LedgerCsvRow row;
    row.branch = to_int(cell_at(cells, 0), -1);
    row.site = cell_at(cells, 1);
    row.function = cell_at(cells, 2);
    const std::string arm = cell_at(cells, 3);
    row.arm = arm.empty() ? 'F' : arm[0];
    row.covered = to_int(cell_at(cells, 4), 0) != 0;
    row.first_iteration = to_int(cell_at(cells, 5), -1);
    row.first_focus = to_int(cell_at(cells, 6), -1);
    row.first_nprocs = to_int(cell_at(cells, 7), 0);
    row.first_rank = to_int(cell_at(cells, 8), -1);
    row.first_harvested = to_int(cell_at(cells, 9), 0) != 0;
    row.total_hits =
        static_cast<std::uint64_t>(to_int(cell_at(cells, 10), 0));
    const std::string per_rank = cell_at(cells, 11);
    std::string piece;
    for (char c : per_rank) {
      if (c == ':') {
        row.hits_per_rank.push_back(
            static_cast<std::uint32_t>(to_int(piece, 0)));
        piece.clear();
      } else {
        piece.push_back(c);
      }
    }
    if (!piece.empty()) {
      row.hits_per_rank.push_back(
          static_cast<std::uint32_t>(to_int(piece, 0)));
    }
    row.miss_attempts = to_int(cell_at(cells, 12), 0);
    row.miss_last_iteration = to_int(cell_at(cells, 13), -1);
    row.miss_budget_exhausted = to_int(cell_at(cells, 14), 0) != 0;
    row.miss_constraint = cell_at(cells, 15);
    row.first_inputs = cell_at(cells, 16);
    row.first_interleaving = to_int(cell_at(cells, 17), -1);
    rows.push_back(std::move(row));
  }
  return rows;
}

/// IterationRecord -> the report's row shape (the live /explain path;
/// offline sessions read the same fields back out of iterations.csv).
std::vector<IterRow> rows_from_records(
    const std::vector<IterationRecord>& records) {
  std::vector<IterRow> rows;
  rows.reserve(records.size());
  for (const IterationRecord& r : records) {
    IterRow row;
    row.iteration = r.iteration;
    row.outcome = rt::to_string(r.outcome);
    row.covered = r.covered_branches;
    row.exec_seconds = r.exec_seconds;
    row.solve_seconds = r.solve_seconds;
    row.restart = r.restart;
    row.solver_nodes = r.solver_nodes;
    row.retries = r.retries;
    row.interleaving = r.interleaving;
    rows.push_back(std::move(row));
  }
  return rows;
}

/// The report body shared by explain_session and explain_live.
/// `journal_header` is the pre-rendered "journal events : ..." line (empty
/// when there is no journal to describe).
void render_report(std::ostream& os, const std::vector<LedgerCsvRow>& ledger,
                   const std::vector<IterRow>& iters,
                   const std::vector<obs::ParsedEvent>& journal,
                   bool have_journal, const std::string& journal_header,
                   const ExplainOptions& opts) {
  std::size_t covered = 0;
  for (const LedgerCsvRow& row : ledger) {
    if (row.covered) ++covered;
  }
  int restarts = 0;
  for (const IterRow& row : iters) {
    if (row.restart) ++restarts;
  }
  os << "iterations        : " << iters.size() << " (" << restarts
     << " restarts)\n"
     << "covered branches  : " << covered << " / " << ledger.size() << "\n";
  os << journal_header;
  os << "\n";
  print_timeline(os, iters, opts.max_milestones);
  os << "\n";
  print_near_misses(os, ledger, opts.top_misses);
  os << "\n";
  print_rank_skew(os, ledger);
  os << "\n";
  print_solver_breakdown(os, iters, journal, have_journal);
  print_matchings(os, iters, ledger, journal);
  print_stall_history(os, journal);
}

}  // namespace

std::vector<LedgerCsvRow> read_ledger_csv(const std::filesystem::path& file) {
  std::ifstream in(file);
  if (!in.is_open()) return {};
  return parse_ledger_csv(in);
}

bool explain_session(const std::filesystem::path& dir, std::ostream& os,
                     const ExplainOptions& opts) {
  const std::vector<LedgerCsvRow> ledger = read_ledger_csv(dir / "ledger.csv");
  const std::vector<IterRow> iters = read_iterations_csv(
      dir / "iterations.csv");
  if (ledger.empty() && iters.empty()) {
    os << "explain: no ledger.csv or iterations.csv in " << dir.string()
       << " (run a campaign with --log-dir first)\n";
    return false;
  }
  std::size_t malformed = 0;
  const std::filesystem::path journal_file = dir / "journal.jsonl";
  const bool have_journal = std::filesystem::exists(journal_file);
  const std::vector<obs::ParsedEvent> journal =
      have_journal ? obs::read_journal(journal_file, &malformed)
                   : std::vector<obs::ParsedEvent>{};

  os << "session           : " << dir.string() << "\n";
  std::string journal_header;
  if (have_journal) {
    std::ostringstream jh;
    jh << "journal events    : " << journal.size();
    if (malformed > 0) jh << " (+" << malformed << " torn/malformed)";
    jh << "\n";
    journal_header = jh.str();
  }
  render_report(os, ledger, iters, journal, have_journal, journal_header,
                opts);
  return true;
}

std::string explain_live(const CoverageLedger& ledger_state,
                         const rt::BranchTable& table,
                         const std::vector<IterationRecord>& iterations,
                         const std::vector<std::string>& journal_lines,
                         const ExplainOptions& opts) {
  // Render the live ledger to CSV and re-parse it through the offline
  // reader: one source of truth for both report paths.
  std::stringstream csv;
  ledger_state.write_csv(csv, table);
  const std::vector<LedgerCsvRow> ledger = parse_ledger_csv(csv);
  const std::vector<IterRow> iters = rows_from_records(iterations);
  std::vector<obs::ParsedEvent> journal;
  journal.reserve(journal_lines.size());
  for (const std::string& line : journal_lines) {
    if (auto ev = obs::parse_journal_line(line)) {
      journal.push_back(std::move(*ev));
    }
  }
  const bool have_journal = !journal_lines.empty();
  std::ostringstream os;
  os << "session           : (live campaign)\n";
  std::string journal_header;
  if (have_journal) {
    std::ostringstream jh;
    jh << "journal events    : " << journal.size() << " (in-memory tail)\n";
    journal_header = jh.str();
  }
  render_report(os, ledger, iters, journal, have_journal, journal_header,
                opts);
  return os.str();
}

}  // namespace compi
