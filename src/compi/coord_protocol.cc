#include "compi/coord_protocol.h"

#include <sstream>

#include "compi/checkpoint.h"

namespace compi::coord {

namespace {

using ckpt::escape;
using ckpt::expect;
using ckpt::read_tail;
using ckpt::unescape;

/// Reserve clamp mirroring the checkpoint reader: a corrupted count must
/// fail at parse time, not drive a giant allocation.
constexpr std::size_t kMaxSaneReserve = 1 << 20;

template <typename T>
void write_list(std::ostream& os, std::string_view tag,
                const std::vector<T>& v) {
  os << tag << ' ' << v.size();
  for (const T& x : v) os << ' ' << x;
  os << '\n';
}

template <typename T>
bool read_list(std::istream& is, std::string_view tag, std::vector<T>& v) {
  std::size_t n = 0;
  if (!expect(is, tag) || !(is >> n)) return false;
  v.clear();
  v.reserve(std::min(n, kMaxSaneReserve));
  for (std::size_t i = 0; i < n; ++i) {
    T x{};
    if (!(is >> x)) return false;
    v.push_back(x);
  }
  return true;
}

void write_sync(std::ostream& os, const CoverageSync& s) {
  os << "progress " << s.completed << ' ' << s.budget << '\n';
  write_list(os, "covered", s.covered);
  write_list(os, "iseen", s.interleaving_seen);
}

bool read_sync(std::istream& is, CoverageSync& s) {
  return expect(is, "progress") && (is >> s.completed >> s.budget) &&
         read_list(is, "covered", s.covered) &&
         read_list(is, "iseen", s.interleaving_seen);
}

void write_telemetry(std::ostream& os, const ShardTelemetry& t) {
  if (!t.valid) return;
  os << "telemetry " << t.elapsed_us << ' ' << t.iterations << ' '
     << t.covered << ' ' << t.frontier_depth << ' '
     << t.interleavings_pending << ' ' << t.solver_sat << ' '
     << t.solver_unsat << ' ' << t.solver_budget << ' ' << t.exec_us << ' '
     << t.solve_us << '\n';
}

/// The telemetry line is optional (a heartbeat sent before the first
/// iteration has nothing to report): absence leaves `valid` false and is
/// not an error; a present-but-torn line is.
bool read_telemetry(std::istream& is, ShardTelemetry& t) {
  std::string tag;
  if (!(is >> tag)) return true;
  if (tag != "telemetry") return false;
  if (!(is >> t.elapsed_us >> t.iterations >> t.covered >> t.frontier_depth >>
        t.interleavings_pending >> t.solver_sat >> t.solver_unsat >>
        t.solver_budget >> t.exec_us >> t.solve_us)) {
    return false;
  }
  t.valid = true;
  return true;
}

}  // namespace

std::string shard_key(const std::string& name, std::uint64_t token) {
  std::ostringstream os;
  os << name << '@' << std::hex << token;
  return os.str();
}

std::string encode_hello(const HelloMsg& m) {
  std::ostringstream os;
  os << "hello " << m.version << ' ' << m.token << ' ' << m.seed << ' '
     << m.wall_us << ' ' << escape(m.name) << '\n';
  return os.str();
}

bool decode_hello(const std::string& payload, HelloMsg& m) {
  std::istringstream is(payload);
  if (!expect(is, "hello") ||
      !(is >> m.version >> m.token >> m.seed >> m.wall_us)) {
    return false;
  }
  m.name = unescape(read_tail(is));
  return m.version == kProtocolVersion && !m.name.empty();
}

std::string encode_welcome(const WelcomeMsg& m) {
  std::ostringstream os;
  os << "welcome " << m.ordinal << '\n';
  write_sync(os, m.sync);
  return os.str();
}

bool decode_welcome(const std::string& payload, WelcomeMsg& m) {
  std::istringstream is(payload);
  return expect(is, "welcome") && (is >> m.ordinal) && read_sync(is, m.sync);
}

std::string encode_lease_request(const LeaseRequestMsg& m) {
  std::ostringstream os;
  os << "lease_request " << escape(m.shard) << '\n';
  return os.str();
}

bool decode_lease_request(const std::string& payload, LeaseRequestMsg& m) {
  std::istringstream is(payload);
  if (!expect(is, "lease_request")) return false;
  m.shard = unescape(read_tail(is));
  return !m.shard.empty();
}

std::string encode_lease_grant(const LeaseGrantMsg& m) {
  std::ostringstream os;
  os << "grant " << m.lease_id << ' ' << m.quota << ' ' << (m.stop ? 1 : 0)
     << ' ' << m.wait_ms << '\n';
  write_sync(os, m.sync);
  return os.str();
}

bool decode_lease_grant(const std::string& payload, LeaseGrantMsg& m) {
  std::istringstream is(payload);
  int stop = 0;
  if (!expect(is, "grant") ||
      !(is >> m.lease_id >> m.quota >> stop >> m.wait_ms)) {
    return false;
  }
  m.stop = stop != 0;
  return read_sync(is, m.sync);
}

std::string encode_delta(const DeltaMsg& m) {
  std::ostringstream os;
  os << "delta " << m.iterations << ' ' << (m.final_report ? 1 : 0) << ' '
     << escape(m.shard) << '\n';
  write_list(os, "covered", m.covered);
  write_list(os, "iseen", m.interleaving_seen);
  os << "bugs " << m.bugs.size() << '\n';
  for (const BugRecord& b : m.bugs) ckpt::write_bug(os, b);
  ckpt::write_blob(os, "ledger_lines", m.ledger_blob);
  write_telemetry(os, m.telemetry);
  return os.str();
}

bool decode_delta(const std::string& payload, DeltaMsg& m) {
  std::istringstream is(payload);
  int final_flag = 0;
  if (!expect(is, "delta") || !(is >> m.iterations >> final_flag)) {
    return false;
  }
  m.final_report = final_flag != 0;
  m.shard = unescape(read_tail(is));
  if (m.shard.empty()) return false;
  if (!read_list(is, "covered", m.covered) ||
      !read_list(is, "iseen", m.interleaving_seen)) {
    return false;
  }
  std::size_t nbugs = 0;
  if (!expect(is, "bugs") || !(is >> nbugs)) return false;
  m.bugs.clear();
  m.bugs.reserve(std::min(nbugs, kMaxSaneReserve));
  for (std::size_t i = 0; i < nbugs; ++i) {
    BugRecord b;
    if (!ckpt::read_bug(is, b)) return false;
    m.bugs.push_back(std::move(b));
  }
  return ckpt::read_blob(is, "ledger_lines", m.ledger_blob) &&
         read_telemetry(is, m.telemetry);
}

std::string encode_heartbeat(const HeartbeatMsg& m) {
  std::ostringstream os;
  os << "heartbeat " << escape(m.shard) << '\n';
  write_telemetry(os, m.telemetry);
  return os.str();
}

bool decode_heartbeat(const std::string& payload, HeartbeatMsg& m) {
  std::istringstream is(payload);
  if (!expect(is, "heartbeat")) return false;
  m.shard = unescape(read_tail(is));
  if (m.shard.empty()) return false;
  return read_telemetry(is, m.telemetry);
}

std::string encode_ack(const AckMsg& m) {
  std::ostringstream os;
  os << "ack " << (m.stop ? 1 : 0) << '\n';
  write_sync(os, m.sync);
  return os.str();
}

bool decode_ack(const std::string& payload, AckMsg& m) {
  std::istringstream is(payload);
  int stop = 0;
  if (!expect(is, "ack") || !(is >> stop)) return false;
  m.stop = stop != 0;
  return read_sync(is, m.sync);
}

}  // namespace compi::coord
