// The parallel campaign engine (--workers=N).
//
// N worker threads each run the full execute -> observe -> solve loop of
// the serial driver (driver.cc) concurrently, merging into ONE campaign:
// a shared CoverageTracker, attribution ledger, bug list, iteration log,
// and event journal, all guarded by a single campaign mutex (`mu`).  Each
// worker owns its private search line — strategy instance (seeded
// per-worker so the lines diverge), test plan, solver, and sandbox — so
// the only contention is short bookkeeping sections; target execution and
// constraint solving, where the time goes, run lock-free.
//
// Iteration ordinals are dealt from one atomic ticket counter, so the
// campaign executes exactly the configured budget regardless of how the
// work interleaves.  Rows land in iterations.csv in completion order
// (each tagged with its worker) and are re-sorted by ordinal for the
// final summary rewrite.
//
// The negation frontier is deduplicated across workers: before solving a
// candidate that steers toward an uncovered untaken arm, a worker claims
// the arm in the shared in-flight set — a second worker proposing the
// same arm skips it (frontier_dedup_skips) instead of burning solver
// budget on a duplicate.  A claim whose arm another worker covered while
// the solve ran is dropped before its model is used
// (stale_candidate_drops).  Candidates whose target is ALREADY covered
// pass through unclaimed, exactly like the serial loop: those are DFS
// backtracking moves, not frontier work, and filtering them would break
// search completeness.
//
// Timing: exec_seconds stays each worker's launch-phase wall clock;
// solve_seconds is the worker's THREAD CPU time, which sums correctly
// across overlapping workers (see obs/phase_clock.h and DESIGN.md).
//
// Checkpointing: the snapshot embeds one WorkerCursor per worker (plan +
// strategy state) plus the contiguous completed-iteration prefix; resume
// requires the same seed AND the same --workers, otherwise the campaign
// starts fresh rather than remapping in-flight search lines.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <sstream>
#include <thread>
#include <unordered_set>

#include "compi/checkpoint.h"
#include "compi/driver.h"
#include "compi/driver_internal.h"
#include "compi/explain.h"
#include "compi/interleaving.h"
#include "compi/ledger.h"
#include "compi/session.h"
#include "compi/work_source.h"
#include "minimpi/launcher.h"
#include "obs/diagnosis.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "obs/phase_clock.h"
#include "obs/status.h"
#include "obs/trace.h"
#include "sandbox/fork_server.h"
#include "sandbox/supervisor.h"
#include "serve/control_plane.h"
#include "solver/cache.h"
#include "solver/solver.h"

namespace compi {

using detail::bug_signature;
using detail::mix_seed;

namespace {

/// One worker's private search line (everything the serial loop keeps in
/// locals between iterations).
struct WorkerState {
  TestPlan plan;
  std::unique_ptr<SearchStrategy> strategy;
  StrategyConfig scfg;
  std::optional<std::size_t> pending_depth;
  bool next_is_restart = true;
  bool bounded_phase = false;
  int failures = 0;
  int consecutive_replans = 0;
};

}  // namespace

CampaignResult Campaign::run_parallel() {
  using Clock = std::chrono::steady_clock;
  const int workers = options_.workers;

  // ---- observability setup (same registry handles as the serial loop) ----
  obs::set_thread_track(0);
  if (options_.trace) {
    obs::tracer().configure(options_.trace_buffer_kb);
    obs::tracer().set_enabled(true);
  }
  auto& reg = obs::registry();
  obs::Counter& m_iterations =
      reg.counter("compi_iterations_total", "Campaign iterations executed");
  obs::Counter& m_restarts =
      reg.counter("compi_restarts_total", "Restarts with fresh random inputs");
  obs::Counter& m_retries = reg.counter(
      "compi_transient_retries_total",
      "Transient-failure retries (timeouts, solver budget exhaustion)");
  obs::Counter& m_bugs =
      reg.counter("compi_bugs_total", "Distinct bugs discovered");
  obs::Gauge& m_covered =
      reg.gauge("compi_covered_branches", "Cumulative covered branches");
  obs::Histogram& m_exec_us = reg.histogram(
      "compi_exec_us", "Per-iteration target execution time (us)");
  obs::Histogram& m_solve_us = reg.histogram(
      "compi_solve_us", "Per-iteration constraint solving time (us)");
  obs::Histogram& m_solver_nodes = reg.histogram(
      "compi_solver_nodes", "Per-iteration solver search nodes expanded");
  obs::Counter& m_sandbox_signal_kills = reg.counter(
      "compi_sandbox_signal_kills_total",
      "Sandboxed children killed by a real signal (SIGSEGV, SIGABRT, ...)");
  obs::Counter& m_sandbox_hang_kills = reg.counter(
      "compi_sandbox_hang_kills_total",
      "Sandboxed children SIGKILLed by the hang watchdog");
  obs::Counter& m_sandbox_harvest_bytes = reg.counter(
      "compi_sandbox_harvest_bytes_total",
      "Bytes salvaged from sandboxed children (pipe stream + coverage map)");
  obs::Counter& m_warm_spawns = reg.counter(
      "compi_warm_spawns_total",
      "Iterations forked from the fork server's warm snapshot");
  obs::Counter& m_cold_forks = reg.counter(
      "compi_cold_forks_total",
      "Iterations that fell back to a cold per-iteration fork");
  obs::Counter& m_batch_runs = reg.counter(
      "compi_batch_runs_total",
      "Iterations executed in-process by the --batch-reset fast path");
  obs::Counter& m_server_restarts = reg.counter(
      "compi_fork_server_restarts_total",
      "Fork-server deaths absorbed by a restart");
  obs::Histogram& m_spawn_us = reg.histogram(
      "compi_spawn_us", "Warm-spawn latency, spawn frame to reap (us)");
  obs::Counter& m_cache_hits = reg.counter(
      "compi_solver_cache_hits_total",
      "Solver memoization cache hits (query answered without searching)");
  obs::Counter& m_cache_misses = reg.counter(
      "compi_solver_cache_misses_total",
      "Solver memoization cache misses (full backtracking search ran)");
  obs::Counter& m_cache_evictions = reg.counter(
      "compi_solver_cache_evictions_total",
      "Solver memoization cache LRU evictions");
  obs::Counter& m_dedup_skips = reg.counter(
      "compi_frontier_dedup_skips_total",
      "Candidates skipped because another worker claimed the same arm");
  obs::Counter& m_stale_drops = reg.counter(
      "compi_stale_candidate_drops_total",
      "Claimed candidates dropped: arm covered while the solve ran");
  obs::Counter& m_interleavings = reg.counter(
      "compi_interleavings_total",
      "Reordered wildcard matchings replayed (--explore-matchings)");
  obs::Gauge& m_frontier_depth = reg.gauge(
      "compi_frontier_depth",
      "Unexplored negation candidates currently queued by the search");
  obs::Gauge& m_interleavings_pending = reg.gauge(
      "compi_interleavings_pending",
      "Reordered wildcard matchings queued and awaiting replay");
  // Registered adjacently so the Prometheus writer emits one HELP/TYPE
  // pair for the whole compi_worker_last_progress_seconds family.
  std::vector<obs::Gauge*> m_worker_progress;
  m_worker_progress.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    m_worker_progress.push_back(&reg.gauge(
        "compi_worker_last_progress_seconds{worker=\"" + std::to_string(w) +
            "\"}",
        "Campaign-relative time of each worker's last completed iteration"));
  }

  // One cache shared by every worker: cross-worker hits are the point
  // (parallel workers flip neighbouring branches of the same paths).
  std::optional<solver::SolveCache> solve_cache;
  if (options_.solver_cache_entries > 0) {
    solve_cache.emplace(
        static_cast<std::size_t>(options_.solver_cache_entries));
  }
  solver::SolveCache* cache = solve_cache ? &*solve_cache : nullptr;
  const auto sync_cache_metrics = [&] {
    if (cache == nullptr) return;
    m_cache_hits.inc(static_cast<std::int64_t>(cache->hits()) -
                     m_cache_hits.value());
    m_cache_misses.inc(static_cast<std::int64_t>(cache->misses()) -
                       m_cache_misses.value());
    m_cache_evictions.inc(static_cast<std::int64_t>(cache->evictions()) -
                          m_cache_evictions.value());
  };

  const auto export_obs = [&] {
    namespace fs = std::filesystem;
    const fs::path base =
        options_.log_dir.empty() ? fs::path(".") : fs::path(options_.log_dir);
    sync_cache_metrics();
    if (options_.metrics) {
      std::ofstream out(base / "metrics.prom");
      reg.write_prometheus(out);
    }
    if (options_.trace) {
      std::ofstream out(base / "trace.json");
      obs::tracer().write_chrome_json(out);
    }
  };

  obs::ObsSpan campaign_span(obs::Cat::kDriver, "campaign");
  const auto campaign_start = Clock::now();
  const auto elapsed = [&] {
    return std::chrono::duration<double>(Clock::now() - campaign_start)
        .count();
  };

  CampaignResult result;
  result.workers_used = static_cast<std::size_t>(workers);
  rt::VarRegistry registry;
  CoverageTracker coverage(*target_.table);
  CoverageLedger ledger(*target_.table);
  obs::Journal journal;
  std::optional<SessionWriter> session;
  if (!options_.log_dir.empty()) session.emplace(options_.log_dir);

  // ---- live status board (--status-file heartbeat + GET /status) ----
  const bool serving = options_.serve_port >= 0;
  std::string status_path = options_.status_file;
  if (serving && status_path.empty() && session) {
    status_path = (session->dir() / "status.json").string();
  }
  std::shared_ptr<obs::StatusBoard> board;
  if (serving || !status_path.empty()) {
    board = std::make_shared<obs::StatusBoard>(workers, options_.iterations);
    board->set_campaign(options_.initial_nprocs, options_.initial_focus);
  }

  const bool two_phase = options_.search == SearchKind::kBoundedDfs;

  // ---- the shared campaign state, guarded by one mutex ----
  std::mutex mu;
  std::vector<std::string> known_hangs;
  /// Shared interleaving frontier (--explore-matchings): any worker's run
  /// forks alternatives, any worker replays them.
  InterleavingFrontier interleavings;
  /// Untaken arms currently being solved for, keyed by BranchId: the
  /// cross-worker frontier deduplication set.
  std::unordered_set<sym::BranchId> in_flight;
  /// Ticket counter: each worker iteration consumes one ordinal.
  std::atomic<int> next_ticket{0};
  std::atomic<bool> stop{false};
  bool halted = false;
  int executed = 0;  // iterations run by THIS process (halt hook)

  // Running totals for the telemetry piggyback (work_source.h) and the
  // stall-diagnosis engine: cumulative solver outcome mix and phase time.
  // Atomics, not `mu` fields: workers bump them from the solve loop, which
  // deliberately holds no lock.
  std::atomic<std::int64_t> tele_sat{0}, tele_unsat{0}, tele_budget{0};
  std::atomic<std::int64_t> tele_exec_us{0}, tele_solve_us{0};
  /// Live frontier depth: the last planned constraint set's size, or 0 the
  /// moment a worker's strategy ran dry (the frontier-starved signal).
  std::atomic<std::int64_t> tele_frontier{-1};

  // Stall diagnosis (obs/diagnosis.h): fed once per iteration under `mu`,
  // journals verdict transitions, and leaves its final verdict on the
  // result.  Pure computation over local state — obs-off and serve-off
  // sessions see the identical artifact bytes they always did.
  obs::DiagnosisEngine diagnosis_engine(&journal);
  const auto diagnosis_input = [&] {  // callers hold `mu`
    obs::DiagnosisInput in;
    in.elapsed_seconds = elapsed();
    in.frontier_depth = tele_frontier.load();
    in.interleavings_pending =
        static_cast<std::int64_t>(interleavings.queue.size());
    in.solver_sat = tele_sat.load();
    in.solver_unsat = tele_unsat.load();
    in.solver_budget = tele_budget.load();
    in.plateau_window_seconds = options_.stall_window_seconds;
    return in;
  };
  /// Completion tracking for checkpoint boundaries: done[i] marks ordinal
  /// i fully recorded; `prefix` is the first not-yet-complete ordinal, so
  /// every iteration below it is safely checkpointable.
  std::vector<char> done(static_cast<std::size_t>(
                             std::max(options_.iterations, 0)),
                         0);
  int prefix = 0;
  /// Latest per-worker cursors, refreshed at the end of each worker
  /// iteration (only when checkpointing can happen — save_state is not
  /// free).
  std::vector<ckpt::WorkerCursor> cursors(
      static_cast<std::size_t>(workers));
  const bool track_cursors =
      session && (options_.checkpoint_interval > 0 ||
                  options_.halt_after_iterations > 0);

  std::vector<WorkerState> wstate(static_cast<std::size_t>(workers));
  const auto make_worker_strategy = [&](int w, bool bounded,
                                        std::size_t bound) {
    StrategyConfig scfg;
    if (two_phase) {
      scfg.kind = bounded ? SearchKind::kBoundedDfs : SearchKind::kDfs;
    } else {
      scfg.kind = options_.search;
    }
    scfg.bound = bound;
    // Decorrelated per-worker seeds: N workers explore N diverging search
    // lines instead of racing down the same one.
    scfg.seed = mix_seed(options_.seed, 0x5eed0000ULL +
                                            static_cast<std::uint64_t>(w));
    scfg.table = target_.table;
    scfg.coverage = &coverage;
    WorkerState ws;
    ws.scfg = scfg;
    ws.strategy = make_strategy(scfg);
    ws.bounded_phase = bounded;
    ws.plan.nprocs = options_.initial_nprocs;
    ws.plan.focus = options_.initial_focus;
    return ws;
  };
  for (int w = 0; w < workers; ++w) {
    wstate[static_cast<std::size_t>(w)] =
        make_worker_strategy(w, false, static_cast<std::size_t>(-1));
  }

  // ---- resume a checkpointed parallel session ----
  if (options_.resume && session) {
    std::optional<ckpt::CampaignCheckpoint> c =
        read_checkpoint(options_.log_dir);
    if (c && c->seed == options_.seed && c->workers == workers &&
        c->worker_cursors.size() == static_cast<std::size_t>(workers)) {
      // Validate every cursor's strategy blob BEFORE touching shared
      // state, so a half-readable snapshot degrades to a clean fresh start.
      std::vector<WorkerState> restored;
      restored.reserve(static_cast<std::size_t>(workers));
      bool ok = true;
      for (int w = 0; w < workers && ok; ++w) {
        const ckpt::WorkerCursor& cur =
            c->worker_cursors[static_cast<std::size_t>(w)];
        WorkerState ws = make_worker_strategy(
            w, two_phase && cur.bounded_phase, c->depth_bound_used);
        std::istringstream blob(cur.strategy_state);
        if (cur.strategy_name != ws.strategy->name() ||
            !ws.strategy->load_state(blob)) {
          ok = false;
          break;
        }
        ws.plan.inputs = cur.plan_inputs;
        ws.plan.nprocs = cur.plan_nprocs;
        ws.plan.focus = cur.plan_focus;
        ws.next_is_restart = cur.next_is_restart;
        ws.pending_depth = cur.pending_depth;
        ws.failures = cur.failures;
        ws.consecutive_replans = cur.consecutive_replans;
        restored.push_back(std::move(ws));
      }
      if (ok) {
        wstate = std::move(restored);
        for (const rt::VarMeta& m : c->registry) {
          registry.intern(m.key, m.kind, m.domain, m.cap, m.comm_index);
        }
        rt::CoverageBitmap bitmap(target_.table->num_branches());
        for (sym::BranchId b : c->covered) bitmap.mark(b);
        coverage.merge(bitmap);
        result.iterations = std::move(c->iterations);
        result.bugs = std::move(c->bugs);
        result.restarts = c->restarts;
        result.max_constraint_set = c->max_constraint_set;
        result.depth_bound_used = c->depth_bound_used;
        result.transient_retries = c->transient_retries;
        result.focus_replans = c->focus_replans;
        result.sandbox_runs = c->sandbox_runs;
        result.sandbox_signal_kills = c->sandbox_signal_kills;
        result.sandbox_hang_kills = c->sandbox_hang_kills;
        result.sandbox_harvest_bytes = c->sandbox_harvest_bytes;
        result.warm_spawns = c->warm_spawns;
        result.cold_forks = c->cold_forks;
        result.fork_server_restarts = c->fork_server_restarts;
        result.batch_runs = c->batch_runs;
        result.resumed = true;
        known_hangs = std::move(c->known_hang_signatures);
        interleavings.queue.assign(c->pending_interleavings.begin(),
                                   c->pending_interleavings.end());
        interleavings.seen.insert(c->interleaving_seen.begin(),
                                  c->interleaving_seen.end());
        interleavings.next_id = c->next_interleaving_id;
        interleavings.enqueued = c->interleavings_enqueued;
        interleavings.run_count = c->interleavings_run;
        interleavings.pruned = c->interleavings_pruned;
        interleavings.capped = c->interleavings_capped;
        next_ticket.store(c->next_iteration);
        prefix = c->next_iteration;
        for (int i = 0; i < c->next_iteration &&
                        i < static_cast<int>(done.size());
             ++i) {
          done[static_cast<std::size_t>(i)] = 1;
        }
        if (!c->ledger_state.empty()) {
          std::istringstream ledger_blob(c->ledger_state);
          (void)ledger.read(ledger_blob);
        }
      }
    }
  }
  const int start_iter = next_ticket.load();

  // Seed every cursor from its worker's initial (or restored) state, so a
  // checkpoint taken before worker w completes an iteration still embeds a
  // loadable cursor for it.
  if (track_cursors) {
    for (int w = 0; w < workers; ++w) {
      WorkerState& ws = wstate[static_cast<std::size_t>(w)];
      ckpt::WorkerCursor& cur = cursors[static_cast<std::size_t>(w)];
      cur.plan_inputs = ws.plan.inputs;
      cur.plan_nprocs = ws.plan.nprocs;
      cur.plan_focus = ws.plan.focus;
      cur.next_is_restart = ws.next_is_restart;
      cur.pending_depth = ws.pending_depth;
      cur.failures = ws.failures;
      cur.consecutive_replans = ws.consecutive_replans;
      cur.bounded_phase = ws.bounded_phase;
      cur.strategy_name = ws.strategy->name();
      std::ostringstream blob;
      ws.strategy->save_state(blob);
      cur.strategy_state = blob.str();
    }
  }

  if (session) session->begin_iterations(result.iterations);
  if (options_.journal && session) {
    const std::filesystem::path journal_path =
        session->dir() / "journal.jsonl";
    if (result.resumed) {
      (void)journal.open_resume(journal_path, start_iter);
    } else {
      (void)journal.open(journal_path);
    }
  }

  struct ExportGuard {
    std::function<void()> fn;
    ~ExportGuard() { fn(); }
  } export_guard{[&] {
    journal.close();
    export_obs();
  }};

  // Declared AFTER the export guard: reverse destruction stops the server
  // thread before the journal closes and the final export runs, on every
  // exit path.  (The happy path also stops it explicitly right after the
  // workers join, before the finalize section mutates shared state
  // without `mu`.)
  serve::ControlPlane control_plane;
  if (serving && board != nullptr) {
    serve::ControlPlaneConfig cp;
    cp.port = options_.serve_port;
    cp.registry = &reg;
    cp.journal = &journal;
    cp.status = [board] { return board->snapshot(); };
    cp.explain = [&, board] {
      // /explain renders a bounded summary from the live ledger under the
      // campaign mutex — same lock the workers' bookkeeping sections take.
      std::lock_guard<std::mutex> lock(mu);
      std::vector<std::string> lines;
      (void)journal.tap_since(0, lines);
      return explain_live(ledger, *target_.table, result.iterations, lines);
    };
    // /healthz: live while some worker completed an iteration recently
    // (same threshold rule as the serial loop — a single test may sit for
    // hang_timeout_ms times retries before the sandbox reaps it).
    const double stall_threshold = std::max(
        30.0, 3.0 * static_cast<double>(options_.hang_timeout_ms) / 1000.0);
    cp.healthy = [board, stall_threshold, &elapsed] {
      const obs::StatusSnapshot s = board->snapshot();
      double last = 0.0;
      bool active = false;
      for (const obs::WorkerStatus& w : s.worker_status) {
        if (w.phase == obs::WorkerPhase::kDone) continue;
        active = true;
        last = std::max(last, w.last_progress_seconds);
      }
      const double stall = elapsed() - last;
      std::ostringstream detail;
      if (!active || stall <= stall_threshold) {
        detail << "progressing: iteration " << s.iteration << ", "
               << s.covered_branches << " branches";
        return std::make_pair(true, detail.str());
      }
      detail << "stalled: no progress for " << static_cast<int>(stall)
             << "s (threshold " << static_cast<int>(stall_threshold) << "s)";
      if (!s.diagnosis_detail.empty()) {
        detail << "; " << s.diagnosis_detail;
      }
      return std::make_pair(false, detail.str());
    };
    if (control_plane.start(std::move(cp))) {
      board->set_serve_port(control_plane.port());
      // Publish the bound port immediately (iteration -1): with --serve=0
      // this is how clients discover the ephemeral port.
      if (!status_path.empty()) {
        (void)obs::write_status_file(
            status_path, obs::render_status_json(board->snapshot()));
      }
    }
  }

  const auto backoff = [&](int attempt) {
    if (options_.retry_backoff_ms <= 0) return;
    const int ms = std::min(options_.retry_backoff_ms << attempt, 1000);
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
  };

  const auto bug_budget_hit = [&] {  // callers hold `mu`
    return options_.max_bugs > 0 &&
           result.bugs.size() >= static_cast<std::size_t>(options_.max_bugs);
  };

  // Snapshot under `mu`.  Only the contiguous completed prefix is recorded
  // as "done": ordinals at or past `prefix` (completed out of order, or in
  // flight) are re-run on resume — coverage merging is idempotent, so the
  // only cost is repeated work, never corruption.
  const auto save_checkpoint_locked = [&] {
    if (!session) return;
    obs::ObsSpan span(obs::Cat::kCheckpoint, "save_checkpoint", "iteration",
                      prefix);
    ckpt::CampaignCheckpoint c;
    c.seed = options_.seed;
    c.next_iteration = prefix;
    c.workers = workers;
    c.worker_cursors = cursors;
    c.restarts = result.restarts;
    c.max_constraint_set = result.max_constraint_set;
    c.depth_bound_used = result.depth_bound_used;
    c.transient_retries = result.transient_retries;
    c.focus_replans = result.focus_replans;
    c.sandbox_runs = result.sandbox_runs;
    c.sandbox_signal_kills = result.sandbox_signal_kills;
    c.sandbox_hang_kills = result.sandbox_hang_kills;
    c.sandbox_harvest_bytes = result.sandbox_harvest_bytes;
    c.warm_spawns = result.warm_spawns;
    c.cold_forks = result.cold_forks;
    c.fork_server_restarts = result.fork_server_restarts;
    c.batch_runs = result.batch_runs;
    for (const IterationRecord& r : result.iterations) {
      if (r.iteration < prefix) c.iterations.push_back(r);
    }
    std::sort(c.iterations.begin(), c.iterations.end(),
              [](const IterationRecord& a, const IterationRecord& b) {
                return a.iteration < b.iteration;
              });
    c.bugs = result.bugs;
    c.covered = coverage.bitmap().covered_ids();
    c.registry = registry.all();
    c.known_hang_signatures = known_hangs;
    c.pending_interleavings.assign(interleavings.queue.begin(),
                                   interleavings.queue.end());
    c.interleaving_seen.assign(interleavings.seen.begin(),
                               interleavings.seen.end());
    std::sort(c.interleaving_seen.begin(), c.interleaving_seen.end());
    c.next_interleaving_id = interleavings.next_id;
    c.interleavings_enqueued = interleavings.enqueued;
    c.interleavings_run = interleavings.run_count;
    c.interleavings_pruned = interleavings.pruned;
    c.interleavings_capped = interleavings.capped;
    // The top-level strategy slot mirrors worker 0 (the format requires
    // one); parallel resume reads the cursors, never this.
    c.strategy_name = cursors.empty() ? "" : cursors[0].strategy_name;
    c.strategy_state = cursors.empty() ? "" : cursors[0].strategy_state;
    std::ostringstream ledger_blob;
    ledger.write(ledger_blob);
    c.ledger_state = ledger_blob.str();
    session->write_checkpoint(c);
    session->write_ledger(ledger, *target_.table);
    session->write_coverage_timeline(c.iterations);
    journal.flush();
    export_obs();
  };

  // One "iteration" journal event per iterations.csv row plus the
  // --status-file heartbeat (tmp + rename).  Callers hold `mu`.
  const auto note_iteration = [&](const IterationRecord& rec,
                                  const std::map<std::string, std::int64_t>&
                                      named_inputs,
                                  std::size_t new_branches) {
    obs::JournalEvent(journal, "iteration", rec.iteration)
        .num("nprocs", rec.nprocs)
        .num("focus", rec.focus)
        .str("outcome", rt::to_string(rec.outcome))
        .boolean("restart", rec.restart)
        .num("constraint_set_size",
             static_cast<std::int64_t>(rec.constraint_set_size))
        .num("covered_branches",
             static_cast<std::int64_t>(rec.covered_branches))
        .num("new_branches", static_cast<std::int64_t>(new_branches))
        .real("exec_seconds", rec.exec_seconds)
        .real("solve_seconds", rec.solve_seconds)
        .num("solver_nodes", rec.solver_nodes)
        .num("retries", rec.retries)
        .num("worker", rec.worker)
        .num("interleaving", rec.interleaving)
        .inputs(named_inputs);
    const obs::Diagnosis diag = diagnosis_engine.update(
        diagnosis_input(), static_cast<std::int64_t>(rec.covered_branches),
        rec.iteration);
    journal.flush();
    if (board == nullptr) return;
    board->set_diagnosis(obs::to_string(diag.kind), diag.detail,
                         diag.stalled_seconds);
    board->record_iteration(rec.iteration, rec.covered_branches,
                            result.bugs.size(), elapsed(), rec.nprocs,
                            rec.focus, rt::to_string(rec.outcome),
                            rec.worker);
    board->set_depths(in_flight.size(), interleavings.queue.size());
    if (cache != nullptr) {
      board->set_solver_cache(static_cast<std::int64_t>(cache->hits()),
                              static_cast<std::int64_t>(cache->misses()));
    }
    m_frontier_depth.set(static_cast<std::int64_t>(in_flight.size()));
    m_interleavings_pending.set(
        static_cast<std::int64_t>(interleavings.queue.size()));
    if (rec.worker >= 0 &&
        rec.worker < static_cast<int>(m_worker_progress.size())) {
      m_worker_progress[static_cast<std::size_t>(rec.worker)]->set(
          static_cast<std::int64_t>(elapsed()));
    }
    if (!status_path.empty()) {
      (void)obs::write_status_file(
          status_path, obs::render_status_json(board->snapshot()));
    }
  };

  // Distributed intake (callers hold `mu`): one report per completed
  // iteration, carrying FULL local state and a CUMULATIVE count (see
  // work_source.h) so replays after reconnects or reclaimed leases are
  // idempotent.  The ledger closure runs inside report() on this thread
  // and takes no locks of its own, so holding `mu` here is safe.
  const auto report_work_locked = [&](bool final_report) {
    if (options_.work_source == nullptr) return;
    WorkDelta d;
    d.final_report = final_report;
    d.iterations_completed =
        static_cast<std::int64_t>(result.iterations.size());
    d.covered = coverage.bitmap().covered_ids();
    d.interleaving_seen.assign(interleavings.seen.begin(),
                               interleavings.seen.end());
    d.bugs = result.bugs;
    if (tele_frontier.load() >= 0) {
      d.frontier_depth = tele_frontier.load();
    } else if (!result.iterations.empty()) {
      d.frontier_depth = static_cast<std::int64_t>(
          result.iterations.back().constraint_set_size);
    }
    d.elapsed_us = static_cast<std::int64_t>(elapsed() * 1e6);
    d.interleavings_pending =
        static_cast<std::int64_t>(interleavings.queue.size());
    d.solver_sat = tele_sat.load();
    d.solver_unsat = tele_unsat.load();
    d.solver_budget = tele_budget.load();
    d.exec_us = tele_exec_us.load();
    d.solve_us = tele_solve_us.load();
    d.ledger_blob = [&] {
      std::ostringstream blob;
      ledger.write(blob);
      return blob.str();
    };
    options_.work_source->report(d);
  };

  // End-of-iteration bookkeeping under `mu`: completion tracking, cursor
  // refresh, periodic checkpoint, halt hook.  Sets `stop` when the
  // campaign must end.
  const auto end_of_iteration_locked = [&](int iter, int w) {
    report_work_locked(/*final_report=*/false);
    if (iter >= 0 && iter < static_cast<int>(done.size())) {
      done[static_cast<std::size_t>(iter)] = 1;
      while (prefix < static_cast<int>(done.size()) &&
             done[static_cast<std::size_t>(prefix)] != 0) {
        ++prefix;
      }
    }
    if (track_cursors) {
      WorkerState& ws = wstate[static_cast<std::size_t>(w)];
      ckpt::WorkerCursor& cur = cursors[static_cast<std::size_t>(w)];
      cur.plan_inputs = ws.plan.inputs;
      cur.plan_nprocs = ws.plan.nprocs;
      cur.plan_focus = ws.plan.focus;
      cur.next_is_restart = ws.next_is_restart;
      cur.pending_depth = ws.pending_depth;
      cur.failures = ws.failures;
      cur.consecutive_replans = ws.consecutive_replans;
      cur.bounded_phase = ws.bounded_phase;
      cur.strategy_name = ws.strategy->name();
      std::ostringstream blob;
      ws.strategy->save_state(blob);
      cur.strategy_state = blob.str();
    }
    ++executed;
    if (options_.checkpoint_interval > 0 &&
        executed % options_.checkpoint_interval == 0) {
      save_checkpoint_locked();
    }
    if (options_.halt_after_iterations > 0 &&
        executed >= options_.halt_after_iterations &&
        next_ticket.load() < options_.iterations) {
      save_checkpoint_locked();
      halted = true;
      stop.store(true);
    }
  };

  // ---- the worker loop ----
  const auto worker_body = [&](int w) {
    // Worker w owns trace tracks [w*(max_procs+1), (w+1)*(max_procs+1)):
    // its driver loop on the base track, its rank threads above it.
    const int track_base = w * (options_.max_procs + 1);
    obs::set_thread_track(track_base);
    WorkerState& ws = wstate[static_cast<std::size_t>(w)];
    solver::Solver the_solver({options_.solver_node_budget});
    Framework framework(registry, options_.max_procs, options_.framework,
                        options_.conflict_resolution);
    sandbox::SandboxOptions sandbox_options;
    sandbox_options.hang_timeout =
        std::chrono::milliseconds(options_.hang_timeout_ms);
    sandbox_options.child_mem_mb = options_.child_mem_mb;
    // Each worker owns its fork server: the server child is forked from —
    // and serves — exactly this worker thread, so the engine needs no
    // locking and grandchildren always fork from a single-threaded server.
    std::optional<sandbox::ForkServer> fork_server;
    if (options_.isolate && options_.fork_server) {
      sandbox::ForkServerOptions fso;
      fso.sandbox = sandbox_options;
      fso.max_restarts = options_.fork_server_restarts;
      fork_server.emplace(*target_.table, fso);
    }
    sandbox::BatchGate batch_gate(options_.batch_warmup);
    std::vector<sym::BranchId> last_harvested;
    int last_iter = -1;  // the ordinal this worker parks on when done

    const auto execute = [&](const minimpi::LaunchSpec& s, int iter) {
      last_harvested.clear();
      if (!options_.isolate) return minimpi::launch(s, *target_.table);
      if (options_.batch_reset && batch_gate.ready()) {
        minimpi::RunResult r = sandbox::run_batch_reset(s, *target_.table);
        if (r.job_outcome() == rt::Outcome::kOk) {
          batch_gate.record_clean();
        } else {
          batch_gate.record_fault();
        }
        std::lock_guard<std::mutex> lock(mu);
        ++result.batch_runs;
        m_batch_runs.inc();
        return r;
      }
      sandbox::SandboxStats st;
      minimpi::RunResult r;
      bool warm = false;
      std::uint64_t deaths = 0;
      if (fork_server) {
        const std::uint64_t restarts_before = fork_server->stats().restarts;
        r = fork_server->run(s, &st, &warm);
        deaths = fork_server->stats().restarts - restarts_before;
      } else {
        r = sandbox::run_sandboxed(s, *target_.table, sandbox_options, &st);
      }
      if (options_.batch_reset && st.forked) {
        const bool clean = !st.signal_kill && !st.hang_kill &&
                           r.job_outcome() == rt::Outcome::kOk;
        if (clean) {
          batch_gate.record_clean();
        } else {
          batch_gate.record_fault();
        }
      }
      if (fork_server && (warm || st.forked || deaths > 0)) {
        std::lock_guard<std::mutex> lock(mu);
        if (deaths > 0) {
          result.fork_server_restarts += deaths;
          m_server_restarts.inc(static_cast<std::int64_t>(deaths));
          obs::instant(obs::Cat::kSandbox, "server_restart");
          obs::JournalEvent(journal, "fork_server_restart", iter)
              .num("restarts",
                   static_cast<std::int64_t>(fork_server->stats().restarts))
              .boolean("degraded", fork_server->degraded())
              .num("worker", w);
        }
        if (warm) {
          ++result.warm_spawns;
          m_warm_spawns.inc();
          m_spawn_us.observe(static_cast<std::int64_t>(
              fork_server->stats().last_spawn_seconds * 1e6));
        } else if (st.forked) {
          ++result.cold_forks;
          m_cold_forks.inc();
        }
      }
      if (!st.forked) return r;
      last_harvested = std::move(st.harvested);
      std::lock_guard<std::mutex> lock(mu);
      ++result.sandbox_runs;
      result.sandbox_harvest_bytes += st.harvest_bytes;
      m_sandbox_harvest_bytes.inc(
          static_cast<std::int64_t>(st.harvest_bytes));
      if (st.signal_kill) {
        ++result.sandbox_signal_kills;
        m_sandbox_signal_kills.inc();
        obs::instant(obs::Cat::kSandbox, "signal_kill", "signal",
                     st.term_signal);
        obs::JournalEvent(journal, "sandbox_kill", iter)
            .str("kind", "signal")
            .num("signal", st.term_signal)
            .num("worker", w)
            .num("harvested_branches",
                 static_cast<std::int64_t>(last_harvested.size()));
      }
      if (st.hang_kill) {
        ++result.sandbox_hang_kills;
        m_sandbox_hang_kills.inc();
        obs::instant(obs::Cat::kSandbox, "hang_kill");
        obs::JournalEvent(journal, "sandbox_kill", iter)
            .str("kind", "hang")
            .num("worker", w)
            .num("harvested_branches",
                 static_cast<std::int64_t>(last_harvested.size()));
      }
      return r;
    };

    while (!stop.load(std::memory_order_relaxed)) {
      if (options_.time_budget_seconds > 0 &&
          elapsed() >= options_.time_budget_seconds) {
        break;
      }
      // ---- distributed intake: lease one iteration, absorb the fleet ----
      // Before consuming a ticket, so a denied acquire (global budget
      // done) never burns an ordinal.  Remote coverage merges ahead of
      // planning so the frontier dedup skips branches other shards
      // already covered.
      if (options_.work_source != nullptr) {
        if (!options_.work_source->acquire()) {
          obs::JournalEvent(journal, "work_source_stop", next_ticket.load())
              .num("worker", w);
          stop.store(true);
          break;
        }
        const std::vector<sym::BranchId> fleet_covered =
            options_.work_source->take_remote_coverage();
        const std::vector<std::uint64_t> fleet_iseen =
            options_.work_source->take_remote_interleavings();
        if (!fleet_covered.empty() || !fleet_iseen.empty()) {
          std::lock_guard<std::mutex> lock(mu);
          if (!fleet_covered.empty()) {
            rt::CoverageBitmap fleet(target_.table->num_branches());
            for (const sym::BranchId b : fleet_covered) fleet.mark(b);
            coverage.merge(fleet);
          }
          interleavings.seen.insert(fleet_iseen.begin(), fleet_iseen.end());
        }
      }
      const int iter = next_ticket.fetch_add(1);
      if (iter >= options_.iterations) break;
      obs::ObsSpan iter_span(obs::Cat::kDriver, "iteration", "iter", iter);
      int iter_retries = 0;
      last_iter = iter;
      if (board != nullptr) {
        board->worker_phase(w, iter, obs::WorkerPhase::kExecute);
      }

      // ---- pop a pending reordered matching, if any ----
      std::optional<PendingInterleaving> pending;
      if (options_.explore_matchings) {
        std::lock_guard<std::mutex> lock(mu);
        if (!interleavings.queue.empty()) {
          pending = std::move(interleavings.queue.front());
          interleavings.queue.pop_front();
          ++interleavings.run_count;
        }
      }
      if (pending) {
        m_interleavings.inc();
        obs::JournalEvent(journal, "interleaving", iter)
            .num("id", pending->id)
            .num("plan_size",
                 static_cast<std::int64_t>(pending->plan.size()))
            .num("nprocs", pending->nprocs)
            .num("focus", pending->focus)
            .num("worker", w);
      }
      const solver::Assignment* run_inputs =
          pending ? &pending->inputs : &ws.plan.inputs;
      const int run_nprocs = pending ? pending->nprocs : ws.plan.nprocs;
      const int run_focus = pending ? pending->focus : ws.plan.focus;

      // ---- launch the planned test (§III-D) ----
      minimpi::LaunchSpec spec;
      spec.program = target_.program;
      spec.nprocs = run_nprocs;
      spec.focus = run_focus;
      spec.one_way = options_.one_way;
      spec.registry = &registry;
      spec.inputs = run_inputs;
      spec.rng_seed =
          mix_seed(options_.seed, static_cast<std::uint64_t>(iter));
      spec.step_budget = options_.step_budget;
      spec.reduction = options_.reduction;
      spec.mark_mpi_vars = options_.framework;
      spec.timeout = options_.test_timeout;
      spec.track_base = track_base;
      if (options_.explore_matchings) {
        spec.match_schedule = true;
        if (pending) spec.match_plan = pending->plan;
      }

      minimpi::RunResult run;
      for (int attempt = 0;; ++attempt) {
        if (options_.chaos.enabled()) {
          spec.chaos = options_.chaos;
          spec.chaos.seed =
              mix_seed(options_.chaos.seed,
                       static_cast<std::uint64_t>(iter) * 64 +
                           static_cast<std::uint64_t>(attempt));
          obs::JournalEvent(journal, "chaos_armed", iter)
              .num("attempt", attempt)
              .num("worker", w)
              .num("seed", static_cast<std::int64_t>(spec.chaos.seed));
        }
        spec.timeout = options_.test_timeout * (1 << attempt);
        spec.step_budget = options_.step_budget << attempt;
        run = execute(spec, iter);
        if (run.job_outcome() != rt::Outcome::kTimeout) break;
        const std::string sig = bug_signature(run.job_message());
        bool known = false;
        {
          std::lock_guard<std::mutex> lock(mu);
          known = std::find(known_hangs.begin(), known_hangs.end(), sig) !=
                  known_hangs.end();
          if (!known && attempt >= options_.retry_max) {
            known_hangs.push_back(sig);
            known = true;
          }
        }
        if (known) break;
        obs::instant(obs::Cat::kChaosRetry, "timeout_retry", "attempt",
                     attempt);
        obs::JournalEvent(journal, "retry", iter)
            .str("kind", "timeout")
            .num("worker", w)
            .num("attempt", attempt);
        m_retries.inc();
        backoff(attempt);
        {
          std::lock_guard<std::mutex> lock(mu);
          ++result.transient_retries;
        }
        ++iter_retries;
      }
      m_iterations.inc();

      const rt::TestLog& focus_log = run.focus_log();

      IterationRecord rec;
      rec.iteration = iter;
      rec.worker = w;
      rec.nprocs = run_nprocs;
      rec.focus = run_focus;
      rec.interleaving = pending ? pending->id : -1;
      rec.outcome = run.job_outcome();
      rec.constraint_set_size = focus_log.path.size();
      rec.exec_seconds = run.wall_seconds;
      rec.restart = ws.next_is_restart;
      rec.retries = iter_retries;
      m_exec_us.observe(static_cast<std::int64_t>(rec.exec_seconds * 1e6));
      tele_exec_us += static_cast<std::int64_t>(rec.exec_seconds * 1e6);

      // ---- merge coverage + attribute the run (one short section) ----
      std::map<std::string, std::int64_t> named_inputs;
      for (const auto& [var, value] :
           !focus_log.inputs_used.empty() ? focus_log.inputs_used
                                          : *run_inputs) {
        named_inputs[registry.meta(var).key] = value;
      }
      std::size_t covered_before = 0;
      {
        std::lock_guard<std::mutex> lock(mu);
        if (session) session->write_iteration(iter, run);
        covered_before = coverage.covered_branches();
        if (options_.framework) {
          coverage.merge(run.merged_coverage());
        } else {
          coverage.merge(run.focus_log().covered);
        }
        result.max_constraint_set =
            std::max(result.max_constraint_set, focus_log.path.size());
        CoverageLedger::RunContext lctx;
        lctx.iteration = iter;
        lctx.nprocs = run_nprocs;
        lctx.focus = run_focus;
        lctx.inputs = &named_inputs;
        lctx.harvested = &last_harvested;
        lctx.interleaving = pending ? pending->id : -1;
        ledger.record_run(lctx, run);
        rec.covered_branches = coverage.covered_branches();
        if (spec.match_schedule) {
          enqueue_alternatives(interleavings, run.match_trace,
                               !focus_log.inputs_used.empty()
                                   ? focus_log.inputs_used
                                   : *run_inputs,
                               run_nprocs, run_focus,
                               options_.max_interleavings);
        }
      }
      m_covered.set(static_cast<std::int64_t>(rec.covered_branches));

      if (spec.match_schedule) {
        for (const minimpi::MatchRecord& mr : run.match_trace) {
          obs::JournalEvent(journal, "match_choice", iter)
              .num("rank", mr.rank)
              .num("seq", mr.seq)
              .num("src", mr.chosen_src)
              .num("feasible",
                   static_cast<std::int64_t>(mr.feasible.size()))
              .num("interleaving", rec.interleaving);
        }
        if (rec.outcome == rt::Outcome::kDeadlock) {
          obs::JournalEvent(journal, "deadlock", iter)
              .str("cycle", run.job_message())
              .num("interleaving", rec.interleaving);
        }
      }

      // ---- log error-inducing inputs (§V) ----
      if (rt::is_fault(rec.outcome)) {
        const std::string msg = run.job_message();
        const std::string sig = bug_signature(msg);
        bool fresh = false;
        {
          std::lock_guard<std::mutex> lock(mu);
          auto known = std::find_if(result.bugs.begin(), result.bugs.end(),
                                    [&](const BugRecord& b) {
                                      return bug_signature(b.message) == sig;
                                    });
          if (known == result.bugs.end()) {
            fresh = true;
          } else {
            ++known->occurrences;
          }
        }
        if (fresh) {
          BugRecord bug;
          bug.first_iteration = iter;
          bug.occurrences = 1;
          bug.outcome = rec.outcome;
          bug.message = msg;
          bug.inputs = focus_log.inputs_used;
          if (bug.inputs.empty()) bug.inputs = *run_inputs;
          for (const auto& [var, value] : bug.inputs) {
            bug.named_inputs[registry.meta(var).key] = value;
          }
          bug.nprocs = run_nprocs;
          bug.focus = run_focus;
          if (spec.match_schedule) {
            bug.decisions.reserve(run.match_trace.size());
            for (const minimpi::MatchRecord& mr : run.match_trace) {
              bug.decisions.push_back({mr.rank, mr.seq, mr.chosen_src});
            }
          }
          if (options_.confirm_bugs) {
            // Replay outside the lock — confirmation is a full execution
            // and must not stall the other workers.
            minimpi::LaunchSpec confirm = spec;
            confirm.chaos = minimpi::FaultPlan{};
            confirm.inputs = &bug.inputs;
            confirm.match_plan = bug.decisions;
            confirm.timeout = options_.test_timeout;
            confirm.step_budget = options_.step_budget;
            const minimpi::RunResult rerun = execute(confirm, iter);
            bug.flaky = rerun.job_outcome() != bug.outcome;
          }
          std::lock_guard<std::mutex> lock(mu);
          // Re-check: another worker may have landed the same signature
          // while the confirmation replay ran.
          auto known = std::find_if(result.bugs.begin(), result.bugs.end(),
                                    [&](const BugRecord& b) {
                                      return bug_signature(b.message) == sig;
                                    });
          if (known == result.bugs.end()) {
            m_bugs.inc();
            result.bugs.push_back(std::move(bug));
          } else {
            ++known->occurrences;
          }
        }
      }

      // ---- interleaving replays don't drive the search ----
      if (pending) {
        std::lock_guard<std::mutex> lock(mu);
        result.iterations.push_back(rec);
        if (session) session->append_iteration(rec);
        note_iteration(rec, named_inputs,
                       rec.covered_branches - covered_before);
        if (bug_budget_hit()) {
          obs::JournalEvent(journal, "bug_budget_exhausted", iter)
              .num("bugs", static_cast<std::int64_t>(result.bugs.size()));
          stop.store(true);
          break;
        }
        end_of_iteration_locked(iter, w);
        continue;
      }

      // ---- graceful degradation: the focus died before recording ----
      const bool focus_dead =
          run.focus >= 0 &&
          static_cast<std::size_t>(run.focus) < run.ranks.size() &&
          run.ranks[run.focus].outcome != rt::Outcome::kOk;
      if (focus_dead && focus_log.path.empty() && ws.plan.nprocs > 1 &&
          ws.consecutive_replans < ws.plan.nprocs - 1) {
        std::lock_guard<std::mutex> lock(mu);
        result.iterations.push_back(rec);
        if (session) session->append_iteration(rec);
        note_iteration(rec, named_inputs,
                       rec.covered_branches - covered_before);
        ws.plan.focus = (ws.plan.focus + 1) % ws.plan.nprocs;
        ++result.focus_replans;
        ++ws.consecutive_replans;
        if (bug_budget_hit()) {
          stop.store(true);
          break;
        }
        end_of_iteration_locked(iter, w);
        continue;
      }
      ws.consecutive_replans = 0;

      // ---- two-phase switch (per worker, at the global ordinal) ----
      if (two_phase && !ws.bounded_phase &&
          iter + 1 >= options_.dfs_phase_iterations) {
        std::size_t bound = 0;
        {
          std::lock_guard<std::mutex> lock(mu);
          bound = options_.depth_bound > 0
                      ? static_cast<std::size_t>(options_.depth_bound)
                      : static_cast<std::size_t>(
                            static_cast<double>(result.max_constraint_set) *
                                options_.bound_slack +
                            10);
          result.depth_bound_used = bound;
        }
        ws.scfg.kind = SearchKind::kBoundedDfs;
        ws.scfg.bound = bound;
        ws.strategy = make_strategy(ws.scfg);
        ws.bounded_phase = true;
        ws.pending_depth.reset();
      }

      ws.strategy->observe(focus_log.path, ws.next_is_restart
                                               ? std::nullopt
                                               : ws.pending_depth);
      ws.next_is_restart = false;
      ws.pending_depth.reset();

      // ---- pick and solve the next constraint set (§II-A) ----
      const double solve_cpu_start = obs::thread_cpu_seconds();
      if (board != nullptr) {
        board->worker_phase(w, iter, obs::WorkerPhase::kSolve);
      }
      obs::ObsSpan plan_span(obs::Cat::kStrategy, "plan_next_test");
      bool planned = false;
      while (auto cand = ws.strategy->next()) {
        // Frontier deduplication: claim an UNCOVERED target arm before
        // spending solver budget on it.  Covered targets pass through
        // unclaimed — those are backtracking moves, same as serial.
        bool claimed = false;
        if (cand->target >= 0) {
          std::lock_guard<std::mutex> lock(mu);
          if (!coverage.branch_covered(cand->target)) {
            if (in_flight.count(cand->target) != 0) {
              ++result.frontier_dedup_skips;
              m_dedup_skips.inc();
              continue;
            }
            in_flight.insert(cand->target);
            claimed = true;
          }
        }

        std::vector<solver::Predicate> preds = std::move(cand->constraints);
        const solver::Predicate negated = std::move(preds.back());
        preds.pop_back();
        for (auto& p : framework.mpi_constraints(focus_log)) {
          preds.push_back(std::move(p));
        }
        preds.push_back(negated);

        const std::int64_t nodes_before = rec.solver_nodes;
        solver::SolveResult solved = the_solver.solve_incremental(
            preds, framework.domains(), focus_log.inputs_used, cache);
        rec.solver_nodes += solved.nodes_searched;
        for (int attempt = 0;
             !solved.sat && solved.budget_exhausted &&
             attempt < options_.retry_max;
             ++attempt) {
          obs::instant(obs::Cat::kChaosRetry, "solver_retry", "attempt",
                       attempt);
          obs::JournalEvent(journal, "retry", iter)
              .str("kind", "solver")
              .num("attempt", attempt)
              .num("worker", w)
              .num("target", cand->target);
          m_retries.inc();
          backoff(attempt);
          {
            std::lock_guard<std::mutex> lock(mu);
            ++result.transient_retries;
          }
          ++iter_retries;
          solver::Solver relaxed(
              {options_.solver_node_budget << (attempt + 1)});
          solved = relaxed.solve_incremental(preds, framework.domains(),
                                             focus_log.inputs_used, cache);
          rec.solver_nodes += solved.nodes_searched;
        }

        if (claimed) {
          std::lock_guard<std::mutex> lock(mu);
          in_flight.erase(cand->target);
          if (coverage.branch_covered(cand->target)) {
            // Another worker's execution covered the arm while this solve
            // ran: the candidate is stale, its model worthless.  Drop it
            // without accepting or recording a failure.
            ++result.stale_candidate_drops;
            m_stale_drops.inc();
            obs::JournalEvent(journal, "stale_drop", iter)
                .num("worker", w)
                .num("target", cand->target);
            continue;
          }
        }

        obs::JournalEvent(journal, "solve", iter)
            .num("depth", static_cast<std::int64_t>(cand->depth))
            .num("target", cand->target)
            .num("worker", w)
            .boolean("sat", solved.sat)
            .boolean("budget_exhausted", solved.budget_exhausted)
            .num("nodes", rec.solver_nodes - nodes_before)
            .num("slice_size", static_cast<std::int64_t>(solved.slice_size));
        if (solved.sat) {
          ++tele_sat;
        } else if (solved.budget_exhausted) {
          ++tele_budget;
        } else {
          ++tele_unsat;
        }
        if (solved.sat) {
          ws.plan = framework.plan_next_test(solved, focus_log, ws.plan);
          ws.strategy->accepted(*cand);
          ws.pending_depth = cand->depth;
          ws.failures = 0;
          planned = true;
          break;
        }
        if (cand->target >= 0) {
          std::lock_guard<std::mutex> lock(mu);
          ledger.record_solve_failure(cand->target, iter,
                                      negated.to_string(),
                                      solved.budget_exhausted);
        }
        if (++ws.failures >= options_.restart_after_failures) break;
      }
      rec.solve_seconds = obs::thread_cpu_seconds() - solve_cpu_start;
      rec.retries = iter_retries;
      m_solve_us.observe(static_cast<std::int64_t>(rec.solve_seconds * 1e6));
      tele_solve_us += static_cast<std::int64_t>(rec.solve_seconds * 1e6);
      m_solver_nodes.observe(rec.solver_nodes);
      tele_frontier.store(
          planned ? static_cast<std::int64_t>(rec.constraint_set_size) : 0);

      // ---- record the iteration + end-of-iteration bookkeeping ----
      {
        std::lock_guard<std::mutex> lock(mu);
        result.iterations.push_back(rec);
        if (session) session->append_iteration(rec);
        note_iteration(rec, named_inputs,
                       rec.covered_branches - covered_before);
        if (!planned) {
          ++result.restarts;
          m_restarts.inc();
          ws.plan.inputs.clear();
          ws.plan.nprocs = options_.initial_nprocs;
          ws.plan.focus = options_.initial_focus;
          ws.failures = 0;
          ws.next_is_restart = true;
        }
        if (bug_budget_hit()) {
          obs::JournalEvent(journal, "bug_budget_exhausted", iter)
              .num("bugs", static_cast<std::int64_t>(result.bugs.size()));
          stop.store(true);
          break;
        }
        end_of_iteration_locked(iter, w);
      }
    }
    if (board != nullptr) {
      board->worker_phase(w, last_iter, obs::WorkerPhase::kDone);
    }
  };

  {
    std::vector<std::jthread> threads;
    threads.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w) threads.emplace_back(worker_body, w);
  }  // join
  obs::set_thread_track(0);
  // Stop serving before finalize: the sort below mutates the iteration
  // vector the /explain endpoint reads under `mu`, and finalize itself
  // runs unlocked now that the workers are gone.
  control_plane.stop();

  // Flush the final delta whatever way the workers stopped (budget, bug
  // budget, stop grant): the work source retains it for reconciliation
  // even when the coordinator is unreachable right now.
  {
    std::lock_guard<std::mutex> lock(mu);
    report_work_locked(/*final_report=*/true);
    // Final stall verdict for the report and --explain: one more sample at
    // the terminal state (the workers may have stopped between samples).
    const obs::Diagnosis diag = diagnosis_engine.update(
        diagnosis_input(),
        static_cast<std::int64_t>(coverage.covered_branches()),
        result.iterations.empty() ? 0
                                  : result.iterations.back().iteration);
    result.stall_kind = obs::to_string(diag.kind);
    result.stall_detail = diag.detail;
    result.stalled_seconds = diag.stalled_seconds;
  }

  // ---- finalize (workers joined: no locking needed) ----
  std::sort(result.iterations.begin(), result.iterations.end(),
            [](const IterationRecord& a, const IterationRecord& b) {
              return a.iteration < b.iteration;
            });
  result.covered_branches = coverage.covered_branches();
  result.reachable_branches = coverage.reachable_branches();
  result.total_branches = coverage.total_branches();
  result.coverage_rate = coverage.rate();
  result.function_coverage = coverage.per_function();
  if (cache != nullptr) {
    result.solver_cache_hits = static_cast<std::size_t>(cache->hits());
    result.solver_cache_misses = static_cast<std::size_t>(cache->misses());
  }
  result.total_seconds = elapsed();
  result.total_exec_seconds = 0.0;
  result.total_solve_seconds = 0.0;
  for (const IterationRecord& r : result.iterations) {
    result.total_exec_seconds += r.exec_seconds;
    result.total_solve_seconds += r.solve_seconds;
    if (r.outcome == rt::Outcome::kDeadlock) ++result.deadlocks_found;
    if (r.outcome == rt::Outcome::kOrphanMessage) {
      ++result.orphan_messages_found;
    }
  }
  result.interleavings_enqueued = interleavings.enqueued;
  result.interleavings_run = interleavings.run_count;
  result.interleavings_pruned = interleavings.pruned;
  result.interleavings_capped = interleavings.capped;
  if (halted) return result;
  if (session) {
    session->write_summary(result);
    session->write_ledger(ledger, *target_.table);
    session->write_coverage_timeline(result.iterations);
    if (options_.checkpoint_interval > 0) {
      std::lock_guard<std::mutex> lock(mu);
      prefix = std::max(prefix, static_cast<int>(options_.iterations));
      save_checkpoint_locked();
    }
  }
  campaign_span.finish();
  journal.close();
  export_obs();
  return result;
}

}  // namespace compi
