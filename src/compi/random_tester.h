// The random-testing baseline of §VI-E.
//
// Generates uniformly random values for every marked variable (within the
// input-capping limits, for fairness) and randomly varies the number of
// processes and the focus each iteration.  No symbolic execution: every
// rank runs the light instrumentation and only coverage is recorded.
#pragma once

#include "compi/driver.h"
#include "compi/options.h"
#include "compi/target.h"

namespace compi {

class RandomTester {
 public:
  RandomTester(const TargetInfo& target, CampaignOptions options);

  /// Runs to the iteration/time budget; returns the same result shape as a
  /// Campaign (iterations carry coverage curves; bugs are recorded too).
  [[nodiscard]] CampaignResult run();

 private:
  TargetInfo target_;  // by value: callers may pass temporaries
  CampaignOptions options_;
};

}  // namespace compi
