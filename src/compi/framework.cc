#include "compi/framework.h"

#include <algorithm>

#include "obs/trace.h"

namespace compi {

using rt::VarKind;
using solver::Predicate;
using solver::Var;

std::vector<Predicate> Framework::mpi_constraints(
    const rt::TestLog& latest_log) const {
  std::vector<Predicate> out;
  if (!enabled_) return out;

  const std::vector<Var> rw = registry_->of_kind(VarKind::kRankWorld);
  const std::vector<Var> rc = registry_->of_kind(VarKind::kRankLocal);
  const std::vector<Var> sw = registry_->of_kind(VarKind::kSizeWorld);

  // (1) all rw variables denote the focus's global rank: x0 == xi.
  for (std::size_t i = 1; i < rw.size(); ++i) {
    out.push_back(solver::make_eq(rw[0], rw[i]));
  }
  // (2) all sw variables denote the world size: z0 == zi.
  for (std::size_t i = 1; i < sw.size(); ++i) {
    out.push_back(solver::make_eq(sw[0], sw[i]));
  }
  // (3) x0 < z0: the global rank is below the world size.
  if (!rw.empty() && !sw.empty()) {
    out.push_back(solver::make_lt(rw[0], sw[0]));
  }
  // (4) yi < s_i with s_i the communicator's concrete runtime size.
  for (Var v : rc) {
    const int comm = registry_->meta(v).comm_index;
    if (comm >= 0 &&
        static_cast<std::size_t>(comm) < latest_log.comm_sizes.size() &&
        latest_log.comm_sizes[comm] > 0) {
      out.push_back(solver::make_lt_const(v, latest_log.comm_sizes[comm]));
    }
  }
  // (5) non-negativity and sw >= 1.
  for (Var v : rw) out.push_back(solver::make_ge_const(v, 0));
  for (Var v : rc) out.push_back(solver::make_ge_const(v, 0));
  for (Var v : sw) out.push_back(solver::make_ge_const(v, 1));
  // Input capping on the process count (§IV-A): sw <= max_procs.
  for (Var v : sw) out.push_back(solver::make_le_const(v, max_procs_));
  return out;
}

solver::DomainMap Framework::domains() const {
  solver::DomainMap out;
  const auto metas = registry_->all();
  for (std::size_t i = 0; i < metas.size(); ++i) {
    out[static_cast<Var>(i)] =
        registry_->effective_domain(static_cast<Var>(i));
  }
  return out;
}

TestPlan Framework::plan_next_test(const solver::SolveResult& solved,
                                   const rt::TestLog& latest_log,
                                   const TestPlan& previous) const {
  obs::ObsSpan span(obs::Cat::kStrategy, "framework_plan", "changed",
                    static_cast<std::int64_t>(solved.changed.size()));
  TestPlan plan;
  plan.inputs = solved.values;
  plan.nprocs = previous.nprocs;
  plan.focus = previous.focus;
  if (!enabled_) return plan;

  const std::vector<Var> rw = registry_->of_kind(VarKind::kRankWorld);
  const std::vector<Var> rc = registry_->of_kind(VarKind::kRankLocal);
  const std::vector<Var> sw = registry_->of_kind(VarKind::kSizeWorld);

  auto value_of = [&](Var v) -> std::optional<std::int64_t> {
    auto it = solved.values.find(v);
    if (it == solved.values.end()) return std::nullopt;
    return it->second;
  };
  auto changed = [&](Var v) {
    return std::binary_search(solved.changed.begin(), solved.changed.end(), v);
  };

  // Number of processes: the derived sw value (§III-D).
  if (!sw.empty()) {
    if (auto v = value_of(sw[0])) {
      plan.nprocs = static_cast<int>(
          std::clamp<std::int64_t>(*v, 1, max_procs_));
    }
  }

  // Focus selection via the most-up-to-date-value rule (§III-C): a changed
  // rw directly names the new focus's global rank; a changed rc must be
  // translated through the runtime mapping table (Table II).
  std::optional<int> new_focus;
  for (Var v : rw) {
    if (changed(v)) {
      if (auto val = value_of(v)) new_focus = static_cast<int>(*val);
      break;
    }
  }
  if (!new_focus) {
    for (Var v : rc) {
      if (!changed(v)) continue;
      const auto val = value_of(v);
      if (!val) continue;
      if (!use_mapping_) {
        // Ablation: the naive reading "local rank == global rank", which
        // targets the wrong process whenever the communicator's local
        // order differs from the global one.
        new_focus = static_cast<int>(*val);
        break;
      }
      const int comm = registry_->meta(v).comm_index;
      if (comm < 0 ||
          static_cast<std::size_t>(comm) >= latest_log.rank_mapping.size()) {
        continue;
      }
      const auto& row = latest_log.rank_mapping[comm];
      if (*val >= 0 && static_cast<std::size_t>(*val) < row.size()) {
        new_focus = row[*val];
        break;
      }
    }
  }
  if (new_focus) plan.focus = *new_focus;
  plan.focus = std::clamp(plan.focus, 0, plan.nprocs - 1);

  // Consistency rewrite: all rank-denoting inputs must refer to the focus.
  for (Var v : rw) plan.inputs[v] = plan.focus;
  if (use_mapping_) {
    for (Var v : rc) {
      const int comm = registry_->meta(v).comm_index;
      if (comm >= 0 &&
          static_cast<std::size_t>(comm) < latest_log.rank_mapping.size()) {
        const auto& row = latest_log.rank_mapping[comm];
        const auto it = std::find(row.begin(), row.end(), plan.focus);
        if (it != row.end()) {
          plan.inputs[v] = it - row.begin();
        }
      }
    }
  }
  for (Var v : sw) plan.inputs[v] = plan.nprocs;
  return plan;
}

}  // namespace compi
