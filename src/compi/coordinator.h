// The distributed campaign coordinator (`compi coordinate`).
//
// A Coordinator owns the GLOBAL view of a sharded campaign: the merged
// covered-branch set, the deduplicated bug list, the merged attribution
// ledger, and the iteration budget.  Shards (campaign processes started
// with --connect) speak the coord_protocol over a loopback TCP message
// server (serve/msg_server.h) and pull work as time-bounded leases:
//
//   lease grant    quota = min(lease_quota, budget - completed -
//                  sum(outstanding lease quotas)); 0 with a wait hint when
//                  other shards hold the remaining budget, 0 with stop once
//                  completed >= budget.
//   lease renewal  every frame from a shard (heartbeat, delta, request)
//                  pushes the deadline of all its leases forward.
//   lease reclaim  a lease whose deadline passes — missed heartbeats — or
//                  whose shard's connection drops is expired: its remaining
//                  quota returns to the pool (journal `lease_reclaimed`)
//                  and other shards re-run the work.  Replays are safe
//                  because deltas are idempotent (full-state, cumulative).
//
// Durability: the coordinator embeds its state in a v7 campaign checkpoint
// (coord section: budget/completed counters, outstanding leases, per-shard
// merge cursors) written through the same tmp+rename SessionWriter path as
// campaign snapshots.  A kill -9'd coordinator restarted with resume=true
// reclaims every restored lease, keeps confirmed coverage, and keeps
// per-shard cumulative cursors so reconnecting shards never double-count.
//
// Observability: joins/losses/reclaims land in the journal
// (`shard_joined` / `shard_lost` / `lease_reclaimed` events), per-shard
// heartbeat gauges and fleet counters in the metrics registry, and the
// merged state is republished through the standard --serve endpoints
// (/metrics /status /events /healthz).
//
// Lock discipline: ONE mutex guards all coordinator state.  It is taken by
// the message-server thread (frame/tick/disconnect callbacks), by wait()
// callers, and by the introspection accessors; nothing under it blocks on
// I/O except the checkpoint write (bounded, tick-context only).  The
// StatusBoard keeps its own leaf mutex, taken strictly inside ours.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "compi/driver.h"
#include "compi/target.h"

namespace compi {

struct CoordinatorOptions {
  /// TCP port for shard connections; 0 binds an ephemeral loopback port.
  int port = 0;
  /// Global iteration budget across all shards.
  std::int64_t budget = 1000;
  /// Iterations per lease grant.
  int lease_quota = 16;
  /// Lease lifetime without any frame from the holding shard; also the
  /// missed-heartbeat threshold for declaring a shard lost.
  int lease_ttl_ms = 10000;
  /// Message-server poll tick (lease expiry scan granularity).
  int tick_ms = 50;
  /// Session directory for checkpoint/journal/bugs/summary; empty = no
  /// persistence (in-process tests).
  std::string log_dir;
  /// Resume from <log_dir>/checkpoint.txt when present.
  bool resume = false;
  /// Write journal.jsonl into the session directory.
  bool journal = false;
  /// Republish merged state over HTTP: -1 off, 0 ephemeral, else fixed.
  int serve_port = -1;
  /// Checkpoint after this many merged deltas (and on stop).
  int checkpoint_every_deltas = 8;
  /// Record coordinator spans (lease grant/reclaim, delta merge, broadcast
  /// sync) into the trace ring and write <log_dir>/trace.json on stop —
  /// the coordinator lane `compi trace-merge` stitches shard traces onto.
  bool trace = false;
  int trace_buffer_kb = 256;
  /// Seconds without new merged coverage before the stall-diagnosis engine
  /// classifies the fleet as stalled (obs/diagnosis.h).
  double stall_window_seconds = 20.0;
};

class Coordinator {
 public:
  Coordinator(const TargetInfo& target, CoordinatorOptions options);
  ~Coordinator();  ///< stop()s if still running
  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  /// Binds the message server (and the serve port when configured),
  /// restoring checkpointed state first when resuming.  False when the
  /// bind fails or serving is compiled out.
  [[nodiscard]] bool start();

  /// Stops the servers (reclaiming every lease still held by a live
  /// connection), writes the final checkpoint and session summary.
  void stop();

  [[nodiscard]] bool running() const;
  /// Bound shard port after start() (resolves port 0).
  [[nodiscard]] int port() const;
  /// Bound HTTP port, -1 when not serving.
  [[nodiscard]] int http_port() const;

  /// True once completed >= budget.
  [[nodiscard]] bool done() const;
  /// Blocks until done() or the timeout (0 = wait forever).  Returns
  /// done().
  bool wait_until_done(double timeout_seconds = 0.0);

  // ---- merged-state introspection (copies, taken under the lock) ----
  [[nodiscard]] std::int64_t completed() const;
  [[nodiscard]] std::int64_t budget() const;
  [[nodiscard]] std::vector<sym::BranchId> covered_ids() const;
  [[nodiscard]] std::vector<BugRecord> bugs() const;
  [[nodiscard]] std::size_t shards_joined() const;
  [[nodiscard]] std::size_t shards_lost() const;
  [[nodiscard]] std::size_t leases_reclaimed() const;
  /// The /fleet JSON document (per-shard telemetry, lease state, rates),
  /// rendered from live state — same bytes the HTTP endpoint serves.
  [[nodiscard]] std::string fleet_json() const;
  /// Current stall-diagnosis verdict: kind ("progressing",
  /// "frontier-starved", ...) and human detail sentence.
  [[nodiscard]] std::pair<std::string, std::string> diagnosis() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace compi
