// The iterative testing driver (paper §II-A, Fig. 3).
//
// One Campaign = one testing session: repeatedly (1) launch the target with
// the planned (nprocs, focus, inputs), (2) union coverage across all ranks,
// (3) pick a constraint to negate per the search strategy, (4) solve the
// updated set incrementally, and (5) derive the next plan via the MPI
// framework.  Faults are logged with their error-inducing inputs; when the
// strategy runs dry or the solver keeps failing, the campaign restarts from
// fresh random inputs (paper §VI: "we just redo the testing").
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "compi/coverage.h"
#include "compi/framework.h"
#include "compi/options.h"
#include "compi/search_strategy.h"
#include "compi/target.h"
#include "runtime/var_registry.h"

namespace compi {

struct IterationRecord {
  int iteration = 0;
  int nprocs = 0;
  int focus = 0;
  rt::Outcome outcome = rt::Outcome::kOk;
  /// Size of the focus's recorded constraint set this run (Fig. 9).
  std::size_t constraint_set_size = 0;
  /// Cumulative covered branches after this iteration (coverage curves).
  std::size_t covered_branches = 0;
  double exec_seconds = 0.0;
  double solve_seconds = 0.0;
  bool restart = false;  // this run used fresh random inputs
  /// Backtracking-search nodes expanded by this iteration's solver queries
  /// (summed over candidates and budget retries).
  std::int64_t solver_nodes = 0;
  /// Transient-failure retries absorbed this iteration (timeout re-runs and
  /// relaxed-budget solver re-queries).
  int retries = 0;
  /// Campaign worker that executed this iteration (0 for the serial path).
  int worker = 0;
  /// Interleaving id when this iteration replayed a reordered wildcard
  /// matching (--explore-matchings); -1 for ordinary input-driven runs.
  std::int64_t interleaving = -1;
};

/// One discovered bug: the failure plus its error-inducing test setup.
struct BugRecord {
  int first_iteration = 0;
  int occurrences = 0;
  rt::Outcome outcome = rt::Outcome::kOk;
  std::string message;
  solver::Assignment inputs;
  /// Same values keyed by variable name (replayable via run_fixed).
  std::map<std::string, std::int64_t> named_inputs;
  int nprocs = 0;
  int focus = 0;
  /// The confirmation re-execution (same inputs, chaos off) did NOT
  /// reproduce the failure: likely environment noise, not a target bug.
  bool flaky = false;
  /// Wildcard decision vector of the failing run (match-scheduled runs
  /// only): replaying it as a match plan reproduces the interleaving — and
  /// hence matching-order-dependent failures — deterministically.
  minimpi::MatchPlan decisions;
};

struct CampaignResult {
  std::vector<IterationRecord> iterations;
  std::vector<BugRecord> bugs;
  /// Where the uncovered branches live (function-level breakdown).
  std::vector<FunctionCoverage> function_coverage;

  std::size_t covered_branches = 0;
  std::size_t reachable_branches = 0;
  std::size_t total_branches = 0;
  double coverage_rate = 0.0;

  std::size_t max_constraint_set = 0;
  std::size_t depth_bound_used = 0;
  std::size_t restarts = 0;
  /// Transient failures absorbed by the retry/backoff policy (solver budget
  /// exhaustion, per-test wall-clock timeouts) instead of counting toward a
  /// restart.
  std::size_t transient_retries = 0;
  /// Iterations salvaged by moving the focus to another rank after the
  /// planned focus died without recording a usable path.
  std::size_t focus_replans = 0;
  /// Sandbox (--isolate) accounting: tests run in a forked child, children
  /// killed by a real signal, children SIGKILLed by the hang watchdog, and
  /// bytes salvaged from dead children (pipe stream + harvested coverage).
  std::size_t sandbox_runs = 0;
  std::size_t sandbox_signal_kills = 0;
  std::size_t sandbox_hang_kills = 0;
  std::size_t sandbox_harvest_bytes = 0;
  /// Fork-server engine accounting (--isolate with --fork-server=on, the
  /// default): iterations forked warm from the server snapshot, iterations
  /// that fell back to a cold per-iteration fork, and server deaths
  /// absorbed by a restart.  batch_runs counts --batch-reset iterations
  /// executed in-process with zero process creation (NOT included in
  /// sandbox_runs).
  std::size_t warm_spawns = 0;
  std::size_t cold_forks = 0;
  std::size_t fork_server_restarts = 0;
  std::size_t batch_runs = 0;
  /// True when the campaign continued a checkpointed session.
  bool resumed = false;
  /// Parallel-engine accounting (--workers > 1; all zero on the serial
  /// path).  Dedup skips are candidates not solved because their untaken
  /// arm was claimed by another worker; stale drops are candidates whose
  /// arm was covered by another worker between dequeue and solve.
  std::size_t workers_used = 1;
  std::size_t frontier_dedup_skips = 0;
  std::size_t stale_candidate_drops = 0;
  /// Solver memoization totals (zero when the cache is disabled).
  std::size_t solver_cache_hits = 0;
  std::size_t solver_cache_misses = 0;
  /// Wildcard-matching exploration accounting (--explore-matchings; all
  /// zero when exploration is off).  Pruned counts alternatives dropped by
  /// the sleep-set dedup; capped counts those dropped by
  /// --max-interleavings.
  std::size_t interleavings_enqueued = 0;
  std::size_t interleavings_run = 0;
  std::size_t interleavings_pruned = 0;
  std::size_t interleavings_capped = 0;
  /// Exact matching-bug verdicts observed across iterations.
  std::size_t deadlocks_found = 0;
  std::size_t orphan_messages_found = 0;
  double total_seconds = 0.0;
  /// Sums of the per-iteration phase timings.  exec_seconds is each
  /// worker's launch-phase wall clock, so under --workers > 1 this SUM can
  /// exceed total_seconds (workers overlap); solve_seconds is per-worker
  /// THREAD CPU time and never double-counts (see DESIGN.md).
  double total_exec_seconds = 0.0;
  double total_solve_seconds = 0.0;
  /// End-of-campaign search-stall diagnosis (obs/diagnosis.h): why progress
  /// stopped, computed purely from the records above so obs-on and obs-off
  /// builds agree.  "progressing" means coverage was still being earned
  /// when the budget ran out.
  std::string stall_kind = "progressing";
  std::string stall_detail;
  double stalled_seconds = 0.0;
};

class Campaign {
 public:
  Campaign(const TargetInfo& target, CampaignOptions options);

  /// Runs the full campaign to its iteration/time budget.  Dispatches to
  /// the serial loop (workers <= 1, bit-identical to the pre-parallel
  /// driver) or the parallel engine (parallel.cc).
  [[nodiscard]] CampaignResult run();

 private:
  [[nodiscard]] CampaignResult run_serial();
  /// The --workers engine: N concurrent execute->solve loops over shared
  /// coverage, ledger, and candidate frontier (defined in parallel.cc).
  [[nodiscard]] CampaignResult run_parallel();

  TargetInfo target_;  // by value: callers may pass temporaries
  CampaignOptions options_;
};

}  // namespace compi
