// Campaign configuration: everything §VI's experiment setup varies.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

#include "minimpi/fault_plan.h"

namespace compi {

class WorkSource;

/// Which search strategy drives constraint negation (paper §II-B).
enum class SearchKind : std::uint8_t {
  kBoundedDfs,     // COMPI's default (two-phase: DFS then BoundedDFS)
  kDfs,            // unbounded depth-first
  kRandomBranch,   // negate a random branch of the last path
  kUniformRandom,  // uniform random path sampling
  kCfg,            // CFG-distance scoring
  kGenerational,   // SAGE-style generational search (extension, not in
                   // the paper: expand every flip of each run, prioritize
                   // runs that found new coverage)
};

[[nodiscard]] const char* to_string(SearchKind k);

struct CampaignOptions {
  std::uint64_t seed = 1;

  /// Iteration budget (number of target executions).
  int iterations = 500;
  /// Wall-clock budget in seconds; 0 = iterations only.  Used by the
  /// fixed-time-budget comparisons of §VI-D/E.
  double time_budget_seconds = 0.0;

  // ---- test setup (paper "Experiment setup") ----
  int initial_nprocs = 8;
  int initial_focus = 0;
  /// Cap on the number of processes (input capping applied to sw, §IV-A).
  int max_procs = 16;

  // ---- search (§II-B) ----
  SearchKind search = SearchKind::kBoundedDfs;
  /// Pure-DFS phase length before switching to BoundedDFS (the "x" of the
  /// two-phase scheme; 50 for SUSY-HMC, 1000 for HPL/IMB in the paper).
  int dfs_phase_iterations = 50;
  /// Explicit depth bound; 0 derives it from the observed maximum
  /// constraint-set size with `bound_slack` headroom.
  int depth_bound = 0;
  double bound_slack = 1.2;

  // ---- cost-control features ----
  bool reduction = true;       // constraint-set reduction (§IV-C)
  bool one_way = false;        // one-way instrumentation ablation (§IV-B)
  bool framework = true;       // false = No_Fwk ablation (§VI-E)
  /// Translate changed rc values through the runtime local->global mapping
  /// (§III-C).  false = ablation: local ranks read as global ranks.
  bool conflict_resolution = true;

  // ---- parallelism (the --workers engine) ----
  /// Concurrent campaign workers.  1 (the default) runs the serial driver
  /// loop unchanged — sessions are bit-identical to the pre-parallel
  /// driver.  N > 1 runs N worker threads that each execute->solve
  /// independently while sharing one coverage map, attribution ledger, and
  /// deduplicated negation frontier (two workers never chase the same
  /// untaken arm concurrently; a candidate whose arm another worker covered
  /// between dequeue and solve is dropped before solving).
  int workers = 1;
  /// Solver memoization capacity in entries (solver/cache.h): definitive
  /// incremental-solve answers keyed on the normalized dependency slice,
  /// shared across workers and restarts.  0 disables the cache (the
  /// default, keeping single-worker sessions bit-identical in their
  /// solver_nodes accounting).
  int solver_cache_entries = 0;

  // ---- wildcard-matching exploration (match_scheduler.h) ----
  /// Route every test through the match scheduler and enumerate alternative
  /// wildcard-receive matchings as a second frontier dimension: each
  /// observed decision point with >1 feasible senders forks a replayable
  /// interleaving (prefix choices pinned, one choice flipped), deduplicated
  /// DPOR/sleep-set style.  Also switches hang detection from the
  /// wall-clock watchdog to the scheduler's exact deadlock / orphan-message
  /// verdicts.  Off by default: campaigns stay bit-identical.
  bool explore_matchings = false;
  /// Cap on distinct interleavings enqueued per campaign (0 = unlimited).
  int max_interleavings = 64;

  // ---- runtime limits ----
  std::int64_t step_budget = 2'000'000;
  std::chrono::milliseconds test_timeout{30'000};
  std::int64_t solver_node_budget = 200'000;

  /// Consecutive solver failures / strategy exhaustion before restarting
  /// with fresh random inputs (paper §VI: "we just redo the testing").
  int restart_after_failures = 25;

  // ---- robustness (fault injection, retries, checkpointing) ----
  /// Deterministic fault injection applied to every launched test (chaos
  /// testing of the campaign itself).  Disabled by default; the per-test
  /// chaos seed is re-mixed from `chaos.seed` and the iteration number.
  minimpi::FaultPlan chaos;
  /// Transient-failure retries (solver node-budget exhaustion, per-test
  /// wall-clock timeout) before the failure counts toward
  /// `restart_after_failures`.  Each retry relaxes the relevant budget and
  /// backs off exponentially starting at `retry_backoff_ms`.
  int retry_max = 2;
  int retry_backoff_ms = 0;
  /// Re-execute each newly discovered bug once (same inputs, chaos off) and
  /// mark it flaky when the failure does not reproduce.
  bool confirm_bugs = true;
  /// Write <log_dir>/checkpoint.txt every this-many iterations (and on
  /// completion); 0 disables.  Only active when `log_dir` is set.
  int checkpoint_interval = 25;
  /// Continue a previous session from `log_dir`'s checkpoint instead of
  /// starting fresh (falls back to a fresh run when none is readable).
  bool resume = false;
  /// Testing hook: stop abruptly after this many iterations of THIS process
  /// (writing a final checkpoint but no summary), simulating a kill.
  /// 0 = run to the configured budget.
  int halt_after_iterations = 0;
  /// Run every test in a fork()ed child (sandbox/supervisor.h): a target
  /// that really segfaults or spins in an uninstrumented loop is contained
  /// and recorded as a bug instead of taking the campaign down.  Falls back
  /// to the in-process launcher on non-POSIX builds.
  bool isolate = false;
  /// Wall-clock hang timeout for the sandboxed child in milliseconds;
  /// 0 derives 2x `test_timeout` + 2 s so the in-child cooperative watchdog
  /// always reports simulated hangs first.
  int hang_timeout_ms = 0;
  /// RLIMIT_AS for the sandboxed child in MiB; 0 = inherit the parent's
  /// limit.  Ignored in ASan builds (the shadow needs the address space).
  int child_mem_mb = 0;
  /// Warm-snapshot execution for `--isolate` (sandbox/fork_server.h): a
  /// long-lived server child is forked once and every iteration forks from
  /// its warm snapshot instead of re-forking the whole tester.  On by
  /// default; `--fork-server=off` (or a dead server past its restart
  /// budget) degrades to the classic per-iteration fork.
  bool fork_server = true;
  /// Server deaths tolerated before degrading permanently to cold fork.
  int fork_server_restarts = 3;
  /// Batched non-isolated fast path: after `batch_warmup` consecutive
  /// clean sandboxed runs the target earns in-process execution (zero
  /// process creation); any real signal, hang kill, or non-kOk job outcome
  /// demotes it back to the sandbox until the streak is re-earned.  Only
  /// meaningful with `isolate`.
  bool batch_reset = false;
  int batch_warmup = 3;

  /// Stop the campaign once this many distinct bugs have been recorded
  /// (0 = no budget).  Unlike the halt hook this is a graceful early
  /// termination: summary, ledger, and observability exports all run.
  int max_bugs = 0;

  /// When non-empty, the campaign writes a file-based session under this
  /// directory: per-iteration rank logs (the files the instrumented
  /// processes write in the paper's tool), iterations.csv, and bugs.txt.
  std::string log_dir;

  // ---- observability ----
  /// Record scoped spans/instants into the trace ring and export them as
  /// Chrome trace_event JSON (<log_dir>/trace.json, loadable in
  /// chrome://tracing or Perfetto) at every checkpoint and at campaign end.
  /// Off-path cost when disabled: one relaxed atomic load per span site.
  bool trace = false;
  /// Export the metrics registry in Prometheus text exposition format
  /// (<log_dir>/metrics.prom) at every checkpoint and at campaign end.
  bool metrics = false;
  /// Trace ring-buffer capacity in KiB (lossy flight recorder: oldest
  /// events are overwritten once full).
  int trace_buffer_kb = 256;
  /// Write <log_dir>/journal.jsonl: one JSON event per iteration, per
  /// solve attempt, per retry/chaos arming, and per sandbox kill
  /// (obs/journal.h).  Requires `log_dir`; survives --resume with its
  /// iteration events aligned to iterations.csv.
  bool journal = false;
  /// When non-empty, atomically rewrite this file each iteration with a
  /// small JSON heartbeat (iteration, covered branches, bugs, elapsed
  /// seconds, world size, focus) for external monitoring.
  std::string status_file;
  /// Embedded control-plane HTTP server (serve/control_plane.h): -1 (the
  /// default) = off, 0 = bind an ephemeral loopback port, else bind this
  /// port.  Serves /metrics, /status, /events (SSE journal tail), and
  /// /explain while the campaign runs.  The bound port is published in the
  /// status heartbeat (`serve_port`), which defaults to
  /// <log_dir>/status.json when serving without --status-file.
  int serve_port = -1;
  /// Distributed work intake (work_source.h): non-owning; null (the
  /// default) leaves the engines byte-identical to standalone behaviour.
  /// Set by the --connect shard mode to a ShardLink speaking the
  /// coordinator protocol.
  WorkSource* work_source = nullptr;
  /// Seconds without new coverage before the stall-diagnosis engine
  /// (obs/diagnosis.h) classifies the campaign as stalled rather than
  /// progressing.  Tests and deliberately-short campaigns lower it.
  double stall_window_seconds = 20.0;
};

}  // namespace compi
