#include "compi/shard_link.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <thread>

#include "compi/coord_protocol.h"
#include "compi/driver_internal.h"
#include "serve/frame.h"
#include "serve/net_util.h"

namespace compi {

#ifdef COMPI_SERVE_POSIX

namespace {

using Clock = std::chrono::steady_clock;

/// Latest full local state, retained for retransmission after reconnects
/// (the rejoin reconciliation upload).
struct Snapshot {
  std::int64_t iterations = 0;
  std::vector<sym::BranchId> covered;
  std::vector<std::uint64_t> iseen;
  std::vector<BugRecord> bugs;
  std::string ledger_blob;
  bool final_report = false;
  bool has_data = false;
  /// Latest telemetry snapshot, piggybacked on deltas AND heartbeats so an
  /// idle (leased-out, slow-iteration) shard still reports live rates.
  coord::ShardTelemetry telemetry;
};

std::int64_t wall_clock_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

std::uint64_t mint_token(const ShardLinkOptions& opts, const void* self) {
  const auto now = std::chrono::system_clock::now().time_since_epoch();
  std::uint64_t t = static_cast<std::uint64_t>(now.count());
  t = detail::mix_seed(t, opts.seed);
  t = detail::mix_seed(t, reinterpret_cast<std::uintptr_t>(self));
  for (char c : opts.name) t = detail::mix_seed(t, static_cast<std::uint64_t>(c));
  return t;
}

}  // namespace

struct ShardLink::Impl {
  ShardLinkOptions opts;
  std::uint64_t token;
  std::string key;

  mutable std::mutex mu;
  std::condition_variable cv;
  std::thread thread;

  int fd = -1;
  bool connected_flag = false;
  bool degraded = false;
  bool stop_campaign = false;
  bool shutting_down = false;
  int failures = 0;
  int backoff_ms = 0;
  Clock::time_point next_attempt = Clock::now();

  Snapshot snap;
  int unreported = 0;
  /// Iterations of granted lease quota not yet consumed by acquire().
  int leased = 0;

  [[nodiscard]] int lease_remaining() const { return leased; }
  void consume_lease() { --leased; }
  void grant_lease(int quota) { leased = quota; }

  std::vector<sym::BranchId> remote_covered;
  std::vector<std::uint64_t> remote_iseen;

  explicit Impl(ShardLinkOptions o)
      : opts(std::move(o)),
        token(mint_token(opts, this)),
        key(coord::shard_key(opts.name, token)),
        backoff_ms(std::max(1, opts.reconnect_initial_ms)) {}

  void close_locked() {
    if (fd >= 0) ::close(fd);
    fd = -1;
    connected_flag = false;
  }

  /// Books a connection failure: closes the socket and schedules the next
  /// attempt with exponential backoff plus deterministic jitter.
  void note_failure_locked() {
    close_locked();
    ++failures;
    if (failures >= std::max(1, opts.standalone_after_failures)) {
      degraded = true;
      cv.notify_all();  // acquire() waiters may now go standalone
    }
    const int jitter_span = std::max(1, backoff_ms / 4);
    const int jitter = static_cast<int>(
        detail::mix_seed(token, static_cast<std::uint64_t>(failures)) %
        static_cast<std::uint64_t>(jitter_span));
    next_attempt =
        Clock::now() + std::chrono::milliseconds(backoff_ms + jitter);
    backoff_ms = std::min(backoff_ms * 2, std::max(backoff_ms,
                                                   opts.reconnect_max_ms));
  }

  /// One request/response round trip on the open socket.  False (with
  /// failure bookkeeping) on any transport error or protocol violation.
  bool transact_locked(char type, const std::string& payload,
                       serve::WireFrame& reply) {
    if (fd < 0) return false;
    std::string out;
    serve::append_wire_frame(out, type, payload);
    if (!serve::net::send_all(fd, out)) {
      note_failure_locked();
      return false;
    }
    char hdr[serve::kWireFrameHeaderBytes];
    if (!serve::net::recv_all(fd, hdr, sizeof(hdr))) {
      note_failure_locked();
      return false;
    }
    const std::size_t len =
        static_cast<std::size_t>(static_cast<unsigned char>(hdr[0])) |
        static_cast<std::size_t>(static_cast<unsigned char>(hdr[1])) << 8 |
        static_cast<std::size_t>(static_cast<unsigned char>(hdr[2])) << 16 |
        static_cast<std::size_t>(static_cast<unsigned char>(hdr[3])) << 24;
    const char t = hdr[4];
    if (std::strchr(coord::kShardAccepts, t) == nullptr ||
        len > serve::kMaxWireFramePayload) {
      note_failure_locked();
      return false;
    }
    reply.type = t;
    reply.payload.resize(len);
    if (len > 0 && !serve::net::recv_all(fd, reply.payload.data(), len)) {
      note_failure_locked();
      return false;
    }
    return true;
  }

  void absorb_sync_locked(const coord::CoverageSync& sync) {
    remote_covered.insert(remote_covered.end(), sync.covered.begin(),
                          sync.covered.end());
    remote_iseen.insert(remote_iseen.end(), sync.interleaving_seen.begin(),
                        sync.interleaving_seen.end());
  }

  /// Uploads the retained snapshot.  On success the Ack's coverage sync is
  /// absorbed and a stop verdict latches.
  bool transmit_locked() {
    if (!snap.has_data || fd < 0) return false;
    coord::DeltaMsg m;
    m.shard = key;
    m.iterations = snap.iterations;
    m.covered = snap.covered;
    m.interleaving_seen = snap.iseen;
    m.bugs = snap.bugs;
    m.ledger_blob = snap.ledger_blob;
    m.final_report = snap.final_report;
    m.telemetry = snap.telemetry;
    serve::WireFrame reply;
    if (!transact_locked(coord::kDelta, coord::encode_delta(m), reply)) {
      return false;
    }
    if (reply.type != coord::kAck) {
      note_failure_locked();  // coordinator forgot us: re-handshake
      return false;
    }
    coord::AckMsg a;
    if (!coord::decode_ack(reply.payload, a)) {
      note_failure_locked();
      return false;
    }
    absorb_sync_locked(a.sync);
    if (a.stop) {
      stop_campaign = true;
      cv.notify_all();
    }
    unreported = 0;
    return true;
  }

  /// Connect + Hello/Welcome handshake + rejoin reconciliation.
  bool connect_locked() {
    close_locked();
    fd = serve::net::connect_client(opts.connect, opts.io_timeout_ms);
    if (fd < 0) {
      note_failure_locked();
      return false;
    }
    coord::HelloMsg h;
    h.name = opts.name;
    h.token = token;
    h.seed = opts.seed;
    h.wall_us = wall_clock_us();
    serve::WireFrame reply;
    if (!transact_locked(coord::kHello, coord::encode_hello(h), reply)) {
      return false;
    }
    coord::WelcomeMsg w;
    if (reply.type != coord::kWelcome ||
        !coord::decode_welcome(reply.payload, w)) {
      note_failure_locked();
      return false;
    }
    absorb_sync_locked(w.sync);
    connected_flag = true;
    degraded = false;
    failures = 0;
    backoff_ms = std::max(1, opts.reconnect_initial_ms);
    // Reconcile: everything earned while disconnected goes up now.
    if (snap.has_data) (void)transmit_locked();
    cv.notify_all();
    return connected_flag;
  }

  void background() {
    std::unique_lock<std::mutex> lock(mu);
    auto last_beat = Clock::now();
    while (!shutting_down) {
      cv.wait_for(lock, std::chrono::milliseconds(
                            std::max(10, opts.lease_wait_poll_ms)));
      if (shutting_down) break;
      const auto now = Clock::now();
      if (!connected_flag && !stop_campaign && now >= next_attempt) {
        (void)connect_locked();
        continue;
      }
      if (connected_flag &&
          now - last_beat >=
              std::chrono::milliseconds(std::max(50, opts.heartbeat_ms))) {
        last_beat = now;
        if (snap.has_data && unreported > 0) {
          (void)transmit_locked();
          continue;
        }
        coord::HeartbeatMsg m;
        m.shard = key;
        m.telemetry = snap.telemetry;
        serve::WireFrame reply;
        if (!transact_locked(coord::kHeartbeat,
                             coord::encode_heartbeat(m), reply)) {
          continue;
        }
        if (reply.type != coord::kAck) {
          note_failure_locked();
          continue;
        }
        coord::AckMsg a;
        if (!coord::decode_ack(reply.payload, a)) {
          note_failure_locked();
          continue;
        }
        absorb_sync_locked(a.sync);
        if (a.stop) {
          stop_campaign = true;
          cv.notify_all();
        }
      }
    }
  }
};

ShardLink::ShardLink(ShardLinkOptions options)
    : impl_(std::make_unique<Impl>(std::move(options))) {}

ShardLink::~ShardLink() {
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->shutting_down = true;
    impl_->cv.notify_all();
  }
  if (impl_->thread.joinable()) impl_->thread.join();
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->close_locked();
}

bool ShardLink::start() {
  bool ok = false;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    ok = impl_->connect_locked();
  }
  impl_->thread = std::thread([im = impl_.get()] { im->background(); });
  return ok;
}

void ShardLink::finish() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  if (!impl_->connected_flag) return;
  if (impl_->snap.has_data) {
    impl_->snap.final_report = true;
    (void)impl_->transmit_locked();
  }
  if (impl_->connected_flag) {
    coord::HeartbeatMsg m;
    m.shard = impl_->key;
    serve::WireFrame reply;
    (void)impl_->transact_locked(coord::kFinished,
                                 coord::encode_heartbeat(m), reply);
  }
}

bool ShardLink::acquire() {
  Impl& im = *impl_;
  std::unique_lock<std::mutex> lock(im.mu);
  for (;;) {
    if (im.shutting_down || im.stop_campaign) return false;
    if (im.lease_remaining() > 0) {
      im.consume_lease();
      return true;
    }
    if (!im.connected_flag) {
      if (im.degraded) return true;  // standalone: local budget governs
      im.cv.wait_for(lock, std::chrono::milliseconds(
                               std::max(10, im.opts.lease_wait_poll_ms)));
      continue;
    }
    // Flush results before asking for more work, so the coordinator's
    // accounting is current when it sizes the grant.
    if (im.snap.has_data && im.unreported > 0) (void)im.transmit_locked();
    if (!im.connected_flag || im.stop_campaign) continue;
    coord::LeaseRequestMsg m;
    m.shard = im.key;
    serve::WireFrame reply;
    if (!im.transact_locked(coord::kLeaseRequest,
                            coord::encode_lease_request(m), reply)) {
      continue;
    }
    if (reply.type != coord::kLeaseGrant) {
      im.note_failure_locked();  // Error frame: re-handshake via thread
      continue;
    }
    coord::LeaseGrantMsg g;
    if (!coord::decode_lease_grant(reply.payload, g)) {
      im.note_failure_locked();
      continue;
    }
    im.absorb_sync_locked(g.sync);
    if (g.stop) {
      im.stop_campaign = true;
      im.cv.notify_all();
      return false;
    }
    if (g.quota > 0) {
      im.grant_lease(g.quota);
      continue;  // consumed on the next pass
    }
    im.cv.wait_for(lock,
                   std::chrono::milliseconds(std::max(
                       g.wait_ms, std::max(10, im.opts.lease_wait_poll_ms))));
  }
}

void ShardLink::report(const WorkDelta& delta) {
  Impl& im = *impl_;
  std::lock_guard<std::mutex> lock(im.mu);
  const bool coverage_changed = delta.covered.size() != im.snap.covered.size();
  const bool bugs_changed = delta.bugs.size() != im.snap.bugs.size();
  im.snap.iterations =
      std::max(im.snap.iterations, delta.iterations_completed);
  coord::ShardTelemetry& t = im.snap.telemetry;
  t.valid = true;
  t.elapsed_us = delta.elapsed_us;
  t.iterations = delta.iterations_completed;
  t.covered = static_cast<std::int64_t>(delta.covered.size());
  t.frontier_depth = delta.frontier_depth;
  t.interleavings_pending = delta.interleavings_pending;
  t.solver_sat = delta.solver_sat;
  t.solver_unsat = delta.solver_unsat;
  t.solver_budget = delta.solver_budget;
  t.exec_us = delta.exec_us;
  t.solve_us = delta.solve_us;
  im.snap.covered = delta.covered;
  im.snap.iseen = delta.interleaving_seen;
  im.snap.bugs = delta.bugs;
  im.snap.final_report = im.snap.final_report || delta.final_report;
  // The ledger render is the expensive part: refresh it only when the
  // upload would actually carry news (and always on the final flush).  It
  // must be evaluated HERE, on the engine's thread — the background thread
  // retransmits the stored string, never the closure.
  if (delta.ledger_blob &&
      (coverage_changed || bugs_changed || delta.final_report ||
       !im.snap.has_data)) {
    im.snap.ledger_blob = delta.ledger_blob();
  }
  im.snap.has_data = true;
  ++im.unreported;
  if (im.connected_flag &&
      (delta.final_report || coverage_changed || bugs_changed ||
       im.unreported >= std::max(1, im.opts.report_every) ||
       im.lease_remaining() == 0)) {
    (void)im.transmit_locked();
  }
}

std::vector<sym::BranchId> ShardLink::take_remote_coverage() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return std::move(impl_->remote_covered);
}

std::vector<std::uint64_t> ShardLink::take_remote_interleavings() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return std::move(impl_->remote_iseen);
}

bool ShardLink::connected() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->connected_flag;
}

bool ShardLink::standalone() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->degraded && !impl_->connected_flag;
}

bool ShardLink::stopped() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->stop_campaign;
}

std::string ShardLink::key() const { return impl_->key; }

#else  // !COMPI_SERVE_POSIX — inert stub: campaigns run standalone

struct ShardLink::Impl {
  std::string key;
};

ShardLink::ShardLink(ShardLinkOptions options)
    : impl_(std::make_unique<Impl>()) {
  impl_->key = options.name + "@0";
}
ShardLink::~ShardLink() = default;
bool ShardLink::start() { return false; }
void ShardLink::finish() {}
bool ShardLink::acquire() { return true; }
void ShardLink::report(const WorkDelta&) {}
std::vector<sym::BranchId> ShardLink::take_remote_coverage() { return {}; }
std::vector<std::uint64_t> ShardLink::take_remote_interleavings() {
  return {};
}
bool ShardLink::connected() const { return false; }
bool ShardLink::standalone() const { return true; }
bool ShardLink::stopped() const { return false; }
std::string ShardLink::key() const { return impl_->key; }

#endif  // COMPI_SERVE_POSIX

}  // namespace compi
