#include "solver/cache.h"

#include <algorithm>

namespace compi::solver {

SolveCache::SolveCache(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 1)) {}

bool SolveCache::lookup(const std::string& key, CachedSolve* out) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return false;
  }
  entries_.splice(entries_.begin(), entries_, it->second);
  ++hits_;
  *out = entries_.front().second;
  return true;
}

void SolveCache::insert(const std::string& key, CachedSolve value) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    // Two workers raced on the same miss: both computed the same
    // deterministic answer, keep the incumbent.
    entries_.splice(entries_.begin(), entries_, it->second);
    return;
  }
  entries_.emplace_front(key, std::move(value));
  index_[key] = entries_.begin();
  while (entries_.size() > capacity_) {
    index_.erase(entries_.back().first);
    entries_.pop_back();
    ++evictions_;
  }
}

std::size_t SolveCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

namespace {

void append_int(std::string& out, std::int64_t v) {
  out += std::to_string(v);
  out.push_back(',');
}

}  // namespace

NormalizedSlice normalize_slice(
    std::span<const Predicate> slice_preds, const DomainMap& domains,
    const std::unordered_map<Var, std::int64_t>& prefer) {
  NormalizedSlice out;
  // Canonical ids in first-occurrence order over the predicates' term
  // lists; terms within a LinearExpr are already sorted by Var, so the
  // order is a deterministic function of the slice alone.
  std::unordered_map<Var, std::size_t> canon;
  for (const Predicate& p : slice_preds) {
    for (const Term& t : p.expr.terms()) {
      if (canon.emplace(t.var, out.vars.size()).second) {
        out.vars.push_back(t.var);
      }
    }
  }
  out.key.reserve(slice_preds.size() * 24 + out.vars.size() * 32);
  for (const Predicate& p : slice_preds) {
    out.key.push_back('P');
    append_int(out.key, static_cast<std::int64_t>(p.op));
    append_int(out.key, p.expr.constant_part());
    for (const Term& t : p.expr.terms()) {
      append_int(out.key, static_cast<std::int64_t>(canon[t.var]));
      append_int(out.key, t.coeff);
    }
    out.key.push_back(';');
  }
  for (std::size_t i = 0; i < out.vars.size(); ++i) {
    const Interval dom = domain_of(domains, out.vars[i]);
    out.key.push_back('D');
    append_int(out.key, dom.lo);
    append_int(out.key, dom.hi);
    // The preferred value steers candidate enumeration, so it is part of
    // the query's identity; 'n' marks "no previous value".
    auto it = prefer.find(out.vars[i]);
    if (it != prefer.end()) {
      out.key.push_back('A');
      append_int(out.key, it->second);
    } else {
      out.key.push_back('n');
    }
    out.key.push_back(';');
  }
  return out;
}

}  // namespace compi::solver
