// Linear expressions over symbolic input variables.
//
// Concolic execution (CREST-style) keeps every symbolic expression linear:
// non-linear operations concretize one operand.  A LinearExpr is
//   sum_i coeff_i * var_i + constant
// with terms kept sorted by variable id and zero coefficients dropped.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "solver/interval.h"

namespace compi::solver {

/// Symbolic variable identifier.  Regular marked inputs occupy the low ids
/// (in marking order); MPI-semantics variables (rw/rc/sw, paper Table I) are
/// allocated after them in first-use order on the focus process.
using Var = std::int32_t;

/// One `coeff * var` term of a linear expression.
struct Term {
  Var var = 0;
  std::int64_t coeff = 0;
  constexpr bool operator==(const Term&) const = default;
};

/// Sparse linear integer expression: sum of terms plus a constant.
class LinearExpr {
 public:
  LinearExpr() = default;
  /// Constant expression.
  explicit LinearExpr(std::int64_t constant) : constant_(constant) {}
  /// Single-variable expression `coeff * var + constant`.
  LinearExpr(Var var, std::int64_t coeff, std::int64_t constant = 0);

  [[nodiscard]] static LinearExpr constant(std::int64_t c) { return LinearExpr(c); }
  [[nodiscard]] static LinearExpr variable(Var v) { return LinearExpr(v, 1); }

  [[nodiscard]] bool is_constant() const { return terms_.empty(); }
  [[nodiscard]] std::int64_t constant_part() const { return constant_; }
  [[nodiscard]] const std::vector<Term>& terms() const { return terms_; }
  [[nodiscard]] std::size_t num_terms() const { return terms_.size(); }

  /// Coefficient of `v`, or 0 when absent.
  [[nodiscard]] std::int64_t coeff_of(Var v) const;

  /// Adds `coeff * var` to this expression (dropping the term if it cancels).
  void add_term(Var var, std::int64_t coeff);
  void add_constant(std::int64_t c) { constant_ = sat_add(constant_, c); }

  LinearExpr& operator+=(const LinearExpr& o);
  LinearExpr& operator-=(const LinearExpr& o);
  /// Multiplies every coefficient and the constant by `c`.
  LinearExpr& operator*=(std::int64_t c);

  [[nodiscard]] friend LinearExpr operator+(LinearExpr a, const LinearExpr& b) {
    a += b;
    return a;
  }
  [[nodiscard]] friend LinearExpr operator-(LinearExpr a, const LinearExpr& b) {
    a -= b;
    return a;
  }
  [[nodiscard]] friend LinearExpr operator*(LinearExpr a, std::int64_t c) {
    a *= c;
    return a;
  }
  [[nodiscard]] LinearExpr negated() const;

  /// Evaluates under `value_of`, a callable Var -> int64.
  template <typename F>
  [[nodiscard]] std::int64_t evaluate(F&& value_of) const {
    std::int64_t acc = constant_;
    for (const Term& t : terms_) {
      acc = sat_add(acc, sat_mul(t.coeff, value_of(t.var)));
    }
    return acc;
  }

  /// Appends the variables of this expression to `out` (sorted, unique).
  void collect_vars(std::vector<Var>& out) const;

  [[nodiscard]] std::string to_string() const;

  bool operator==(const LinearExpr&) const = default;

 private:
  std::vector<Term> terms_;       // sorted by var, coeffs non-zero
  std::int64_t constant_ = 0;
};

}  // namespace compi::solver
