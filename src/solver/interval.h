// Closed integer intervals with saturating arithmetic.
//
// The solver reasons about bounded machine integers (COMPI does not handle
// floating point, see paper §VI "Marking input variables").  All interval
// arithmetic saturates at int64 limits so that propagation over int32-ranged
// variables can never overflow.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <ostream>

namespace compi::solver {

/// Saturating add: clamps to the int64 range instead of overflowing.
[[nodiscard]] constexpr std::int64_t sat_add(std::int64_t a, std::int64_t b) {
  constexpr auto kMax = std::numeric_limits<std::int64_t>::max();
  constexpr auto kMin = std::numeric_limits<std::int64_t>::min();
  if (b > 0 && a > kMax - b) return kMax;
  if (b < 0 && a < kMin - b) return kMin;
  return a + b;
}

/// Saturating multiply: clamps to the int64 range instead of overflowing.
[[nodiscard]] constexpr std::int64_t sat_mul(std::int64_t a, std::int64_t b) {
  constexpr auto kMax = std::numeric_limits<std::int64_t>::max();
  constexpr auto kMin = std::numeric_limits<std::int64_t>::min();
  if (a == 0 || b == 0) return 0;
  if (a == -1) return b == kMin ? kMax : -b;
  if (b == -1) return a == kMin ? kMax : -a;
  if (a > 0 ? (b > 0 ? a > kMax / b : b < kMin / a)
            : (b > 0 ? a < kMin / b : -a > kMax / -b)) {
    return (a > 0) == (b > 0) ? kMax : kMin;
  }
  return a * b;
}

/// Floor division (rounds towards negative infinity); d must be non-zero.
[[nodiscard]] constexpr std::int64_t floor_div(std::int64_t n, std::int64_t d) {
  std::int64_t q = n / d;
  if ((n % d != 0) && ((n < 0) != (d < 0))) --q;
  return q;
}

/// Ceiling division (rounds towards positive infinity); d must be non-zero.
[[nodiscard]] constexpr std::int64_t ceil_div(std::int64_t n, std::int64_t d) {
  std::int64_t q = n / d;
  if ((n % d != 0) && ((n < 0) == (d < 0))) ++q;
  return q;
}

/// A closed interval [lo, hi] of int64 values.  Empty iff lo > hi.
struct Interval {
  std::int64_t lo = std::numeric_limits<std::int64_t>::min();
  std::int64_t hi = std::numeric_limits<std::int64_t>::max();

  [[nodiscard]] static constexpr Interval all() { return {}; }
  [[nodiscard]] static constexpr Interval empty() { return {1, 0}; }
  [[nodiscard]] static constexpr Interval point(std::int64_t v) { return {v, v}; }

  [[nodiscard]] constexpr bool is_empty() const { return lo > hi; }
  [[nodiscard]] constexpr bool is_point() const { return lo == hi; }
  [[nodiscard]] constexpr bool contains(std::int64_t v) const {
    return lo <= v && v <= hi;
  }
  /// Width as an unsigned count of values; saturates at uint64 max.
  [[nodiscard]] constexpr std::uint64_t width() const {
    if (is_empty()) return 0;
    return static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  }

  [[nodiscard]] constexpr Interval intersect(Interval o) const {
    return {std::max(lo, o.lo), std::min(hi, o.hi)};
  }

  /// Interval sum: {a + b | a in this, b in o}, saturating.
  [[nodiscard]] constexpr Interval operator+(Interval o) const {
    if (is_empty() || o.is_empty()) return empty();
    return {sat_add(lo, o.lo), sat_add(hi, o.hi)};
  }

  /// Scale by a constant: {c * a | a in this}, saturating.
  [[nodiscard]] constexpr Interval scaled(std::int64_t c) const {
    if (is_empty()) return empty();
    const std::int64_t a = sat_mul(lo, c);
    const std::int64_t b = sat_mul(hi, c);
    return {std::min(a, b), std::max(a, b)};
  }

  constexpr bool operator==(const Interval&) const = default;
};

inline std::ostream& operator<<(std::ostream& os, Interval iv) {
  return os << '[' << iv.lo << ", " << iv.hi << ']';
}

/// The value range of a signed 32-bit input variable — the default domain
/// for marked variables (matches CREST's treatment of C ints).
[[nodiscard]] constexpr Interval int32_domain() {
  return {std::numeric_limits<std::int32_t>::min(),
          std::numeric_limits<std::int32_t>::max()};
}

}  // namespace compi::solver
