#include "solver/propagation.h"

#include <limits>
#include <numeric>

namespace compi::solver {
namespace {

// GCD feasibility: sum c_i x_i + k == 0 has integer solutions only when
// gcd(|c_i|) divides k.  A cheap refutation interval reasoning misses
// (e.g. 2x + 4y == 3).
bool equality_gcd_feasible(const Predicate& p) {
  if (p.op != CompareOp::kEq || p.expr.terms().empty()) return true;
  std::int64_t g = 0;
  for (const Term& t : p.expr.terms()) {
    g = std::gcd(g, t.coeff < 0 ? -t.coeff : t.coeff);
  }
  if (g == 0) return p.expr.constant_part() == 0;
  return p.expr.constant_part() % g == 0;
}

// For predicate `sum_i c_i x_i + k  op  0`, derives the interval of values
// variable `target` may take, given the current domains of the other
// variables, and intersects it into `dom`.  Returns true if `dom` changed.
bool tighten_one(const Predicate& p, Var target, std::int64_t c_t,
                 DomainMap& domains, Interval& dom) {
  // Rest = sum over other terms + constant, as an interval.
  Interval rest = Interval::point(p.expr.constant_part());
  for (const Term& t : p.expr.terms()) {
    if (t.var == target) continue;
    rest = rest + domain_of(domains, t.var).scaled(t.coeff);
    if (rest.is_empty()) return false;
  }

  // Normalize strict ops to non-strict over integers:
  //   E < 0  <=>  E <= -1;   E > 0  <=>  E >= 1.
  std::int64_t upper_rhs = 0;  // for <=-style bound on c_t*x_t + rest
  std::int64_t lower_rhs = 0;  // for >=-style bound
  bool has_upper = false;
  bool has_lower = false;
  switch (p.op) {
    case CompareOp::kLe: has_upper = true; upper_rhs = 0; break;
    case CompareOp::kLt: has_upper = true; upper_rhs = -1; break;
    case CompareOp::kGe: has_lower = true; lower_rhs = 0; break;
    case CompareOp::kGt: has_lower = true; lower_rhs = 1; break;
    case CompareOp::kEq:
      has_upper = has_lower = true;
      upper_rhs = lower_rhs = 0;
      break;
    case CompareOp::kNeq: {
      // Only useful when the rest is a point and the excluded value sits on
      // a domain boundary: x != v with dom [v, hi] becomes [v+1, hi].
      if (!rest.is_point()) return false;
      if (-rest.lo % c_t != 0) return false;
      const std::int64_t excluded = -rest.lo / c_t;
      Interval next = dom;
      if (next.lo == excluded) next.lo = sat_add(next.lo, 1);
      if (next.hi == excluded) next.hi = sat_add(next.hi, -1);
      if (next == dom) return false;
      dom = next;
      return true;
    }
  }

  Interval next = dom;
  if (has_upper) {
    // c_t * x_t <= upper_rhs - rest.lo  (feasibility requires the best case
    // of the rest, i.e. its minimum).
    const std::int64_t rhs = sat_add(upper_rhs, -rest.lo);
    if (c_t > 0) {
      next.hi = std::min(next.hi, floor_div(rhs, c_t));
    } else {
      next.lo = std::max(next.lo, ceil_div(rhs, c_t));
    }
  }
  if (has_lower) {
    // c_t * x_t >= lower_rhs - rest.hi.
    const std::int64_t rhs = sat_add(lower_rhs, -rest.hi);
    if (c_t > 0) {
      next.lo = std::max(next.lo, ceil_div(rhs, c_t));
    } else {
      next.hi = std::min(next.hi, floor_div(rhs, c_t));
    }
  }
  if (next == dom) return false;
  dom = next;
  return true;
}

}  // namespace

PropagationResult propagate(std::span<const Predicate> preds, DomainMap& domains,
                            int max_passes) {
  PropagationResult result;
  for (const Predicate& p : preds) {
    if (!equality_gcd_feasible(p)) {
      result.consistent = false;
      return result;
    }
  }
  for (int pass = 0; pass < max_passes; ++pass) {
    result.passes = pass + 1;
    bool changed = false;
    for (const Predicate& p : preds) {
      for (const Term& t : p.expr.terms()) {
        Interval dom = domain_of(domains, t.var);
        if (tighten_one(p, t.var, t.coeff, domains, dom)) {
          domains[t.var] = dom;
          changed = true;
          if (dom.is_empty()) {
            result.consistent = false;
            return result;
          }
        }
      }
      // Ground predicate (no variables): must hold outright.
      if (p.expr.is_constant() && !p.holds([](Var) { return 0; })) {
        result.consistent = false;
        return result;
      }
    }
    if (!changed) break;
  }
  return result;
}

bool ground_predicates_hold(std::span<const Predicate> preds,
                            const DomainMap& domains) {
  for (const Predicate& p : preds) {
    bool ground = true;
    for (const Term& t : p.expr.terms()) {
      if (!domain_of(domains, t.var).is_point()) {
        ground = false;
        break;
      }
    }
    if (!ground) continue;
    const bool ok =
        p.holds([&](Var v) { return domain_of(domains, v).lo; });
    if (!ok) return false;
  }
  return true;
}

}  // namespace compi::solver
