#include "solver/predicate.h"

namespace compi::solver {

CompareOp negate(CompareOp op) {
  switch (op) {
    case CompareOp::kEq: return CompareOp::kNeq;
    case CompareOp::kNeq: return CompareOp::kEq;
    case CompareOp::kLt: return CompareOp::kGe;
    case CompareOp::kLe: return CompareOp::kGt;
    case CompareOp::kGt: return CompareOp::kLe;
    case CompareOp::kGe: return CompareOp::kLt;
  }
  return CompareOp::kEq;
}

const char* to_string(CompareOp op) {
  switch (op) {
    case CompareOp::kEq: return "==";
    case CompareOp::kNeq: return "!=";
    case CompareOp::kLt: return "<";
    case CompareOp::kLe: return "<=";
    case CompareOp::kGt: return ">";
    case CompareOp::kGe: return ">=";
  }
  return "?";
}

Predicate make_eq(Var a, Var b) {
  LinearExpr e = LinearExpr::variable(a);
  e.add_term(b, -1);
  return {e, CompareOp::kEq};
}

Predicate make_lt(Var a, Var b) {
  LinearExpr e = LinearExpr::variable(a);
  e.add_term(b, -1);
  return {e, CompareOp::kLt};
}

Predicate make_ge_const(Var a, std::int64_t c) {
  return {LinearExpr(a, 1, -c), CompareOp::kGe};
}

Predicate make_le_const(Var a, std::int64_t c) {
  return {LinearExpr(a, 1, -c), CompareOp::kLe};
}

Predicate make_lt_const(Var a, std::int64_t c) {
  return {LinearExpr(a, 1, -c), CompareOp::kLt};
}

Predicate make_eq_const(Var a, std::int64_t c) {
  return {LinearExpr(a, 1, -c), CompareOp::kEq};
}

}  // namespace compi::solver
