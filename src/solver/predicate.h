// Atomic constraints: a linear expression compared against zero.
//
// Every path constraint concolic execution records has the form
//   expr  op  0        where op in {=, !=, <, <=, >, >=}
// (comparisons between two symbolic expressions are normalized by moving
// everything to the left-hand side).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "solver/linear_expr.h"

namespace compi::solver {

/// Comparison operator of a predicate `expr op 0`.
enum class CompareOp : std::uint8_t { kEq, kNeq, kLt, kLe, kGt, kGe };

[[nodiscard]] CompareOp negate(CompareOp op);
[[nodiscard]] const char* to_string(CompareOp op);

/// One atomic constraint: `expr op 0`.
struct Predicate {
  LinearExpr expr;
  CompareOp op = CompareOp::kEq;

  /// The logical negation (e.g. `e <= 0` becomes `e > 0`).  This is the
  /// operation concolic testing applies to force the other branch direction.
  [[nodiscard]] Predicate negated() const { return {expr, negate(op)}; }

  /// Evaluates under `value_of` (callable Var -> int64).
  template <typename F>
  [[nodiscard]] bool holds(F&& value_of) const {
    const std::int64_t v = expr.evaluate(value_of);
    switch (op) {
      case CompareOp::kEq: return v == 0;
      case CompareOp::kNeq: return v != 0;
      case CompareOp::kLt: return v < 0;
      case CompareOp::kLe: return v <= 0;
      case CompareOp::kGt: return v > 0;
      case CompareOp::kGe: return v >= 0;
    }
    return false;
  }

  [[nodiscard]] std::string to_string() const {
    return expr.to_string() + ' ' + solver::to_string(op) + " 0";
  }

  bool operator==(const Predicate&) const = default;
};

/// Convenience builders used by the framework when injecting
/// MPI-semantics constraints (paper §III-B) and cap constraints (§IV-A).
[[nodiscard]] Predicate make_eq(Var a, Var b);              // a - b == 0
[[nodiscard]] Predicate make_lt(Var a, Var b);              // a - b < 0
[[nodiscard]] Predicate make_ge_const(Var a, std::int64_t c);   // a >= c
[[nodiscard]] Predicate make_le_const(Var a, std::int64_t c);   // a <= c
[[nodiscard]] Predicate make_lt_const(Var a, std::int64_t c);   // a < c
[[nodiscard]] Predicate make_eq_const(Var a, std::int64_t c);   // a == c

}  // namespace compi::solver
