// Interval (bounds) propagation for conjunctions of linear predicates.
//
// Given per-variable domains, repeatedly tightens each variable's interval
// using every predicate it appears in, to a fixpoint (or a pass limit — the
// propagation is monotone, so stopping early is sound, just less precise).
// An empty domain proves the conjunction unsatisfiable over the domains.
#pragma once

#include <span>
#include <unordered_map>

#include "solver/interval.h"
#include "solver/predicate.h"

namespace compi::solver {

/// Per-variable domains.  Variables absent from the map are treated as
/// unconstrained int32-ranged (the default for marked C ints).
using DomainMap = std::unordered_map<Var, Interval>;

[[nodiscard]] inline Interval domain_of(const DomainMap& d, Var v) {
  auto it = d.find(v);
  return it == d.end() ? int32_domain() : it->second;
}

/// Result of a propagation run.
struct PropagationResult {
  bool consistent = true;  // false => domains emptied: definitely UNSAT
  int passes = 0;          // passes executed before fixpoint / limit
};

/// Tightens `domains` in place using `preds`.  Runs at most `max_passes`
/// sweeps over all predicates.  Returns consistent=false iff some domain
/// became empty (a proof of unsatisfiability).
PropagationResult propagate(std::span<const Predicate> preds, DomainMap& domains,
                            int max_passes = 64);

/// Checks all fully-ground predicates (every variable's domain a point)
/// against those point values.  Complements propagate(), which cannot
/// refute `!=` over multi-point domains.
[[nodiscard]] bool ground_predicates_hold(std::span<const Predicate> preds,
                                          const DomainMap& domains);

}  // namespace compi::solver
