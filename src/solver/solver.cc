#include "solver/solver.h"

#include <algorithm>
#include <queue>

#include "obs/trace.h"

namespace compi::solver {
namespace {

struct SearchState {
  std::span<const Predicate> preds;
  const SolverOptions* opts;
  const Assignment* prefer;
  std::int64_t nodes_left;
  bool exhausted = false;
};

// Picks the unfixed variable with the narrowest domain (fail-first).
std::optional<Var> pick_branch_var(const DomainMap& domains,
                                   const std::vector<Var>& vars) {
  std::optional<Var> best;
  std::uint64_t best_width = std::numeric_limits<std::uint64_t>::max();
  for (Var v : vars) {
    const Interval dom = domain_of(domains, v);
    if (dom.is_point()) continue;
    if (dom.width() < best_width) {
      best_width = dom.width();
      best = v;
    }
  }
  return best;
}

// Candidate values for `v`, most-promising first: the previous value (value
// reuse is what makes incremental solving report precise "changed" sets),
// then boundary values, zero, and the midpoint; small domains are
// enumerated exhaustively.  The small-value bias matches Yices-1's
// behaviour (its simplex core prefers zeros and tight bounds), which is
// what keeps the same query returning the same model run after run.
std::vector<std::int64_t> candidates_for(Var v, Interval dom,
                                         const SearchState& st) {
  std::vector<std::int64_t> out;
  auto push = [&](std::int64_t x) {
    if (dom.contains(x) &&
        std::find(out.begin(), out.end(), x) == out.end()) {
      out.push_back(x);
    }
  };
  if (auto it = st.prefer->find(v); it != st.prefer->end()) push(it->second);
  if (static_cast<std::int64_t>(dom.width()) <= st.opts->exhaustive_width &&
      dom.width() > 0) {
    for (std::int64_t x = dom.lo; x <= dom.hi; ++x) push(x);
    return out;
  }
  push(dom.lo);
  push(dom.hi);
  push(0);
  push(dom.lo + (dom.hi - dom.lo) / 2);
  push(sat_add(dom.lo, 1));
  push(sat_add(dom.hi, -1));
  push(1);
  if (auto it = st.prefer->find(v); it != st.prefer->end()) {
    push(sat_add(it->second, 1));
    push(sat_add(it->second, -1));
  }
  return out;
}

bool search(SearchState& st, DomainMap domains, const std::vector<Var>& vars,
            DomainMap& solution) {
  if (!propagate(st.preds, domains).consistent) return false;
  const std::optional<Var> branch = pick_branch_var(domains, vars);
  if (!branch) {
    if (!ground_predicates_hold(st.preds, domains)) return false;
    solution = std::move(domains);
    return true;
  }
  const Interval dom = domain_of(domains, *branch);
  for (std::int64_t value : candidates_for(*branch, dom, st)) {
    if (st.nodes_left-- <= 0) {
      st.exhausted = true;
      return false;
    }
    DomainMap next = domains;
    next[*branch] = Interval::point(value);
    if (search(st, std::move(next), vars, solution)) return true;
  }
  return false;
}

}  // namespace

std::optional<Assignment> Solver::solve(std::span<const Predicate> preds,
                                        const DomainMap& domains,
                                        const Assignment& prefer,
                                        bool* budget_exhausted,
                                        std::int64_t* nodes_searched) const {
  std::vector<Var> vars;
  for (const Predicate& p : preds) p.expr.collect_vars(vars);
  for (const auto& [v, dom] : domains) {
    auto it = std::lower_bound(vars.begin(), vars.end(), v);
    if (it == vars.end() || *it != v) vars.insert(it, v);
  }

  DomainMap working = domains;
  SearchState st{preds, &opts_, &prefer, opts_.max_search_nodes};
  DomainMap solution;
  const bool found = search(st, std::move(working), vars, solution);
  if (nodes_searched != nullptr) {
    // nodes_left goes one past zero when the budget trips mid-expansion.
    *nodes_searched =
        opts_.max_search_nodes - std::max<std::int64_t>(st.nodes_left, 0);
  }
  if (budget_exhausted != nullptr) *budget_exhausted = !found && st.exhausted;
  if (!found) return std::nullopt;

  Assignment out;
  out.reserve(vars.size());
  for (Var v : vars) out[v] = domain_of(solution, v).lo;
  return out;
}

std::vector<std::size_t> Solver::dependency_slice(
    std::span<const Predicate> preds, std::size_t seed) {
  // BFS over the "shares a variable" relation, exactly as CREST's Yices
  // wrapper does before handing constraints to the solver.
  std::unordered_map<Var, std::vector<std::size_t>> by_var;
  std::vector<std::vector<Var>> vars_of(preds.size());
  for (std::size_t i = 0; i < preds.size(); ++i) {
    preds[i].expr.collect_vars(vars_of[i]);
    for (Var v : vars_of[i]) by_var[v].push_back(i);
  }
  std::vector<bool> in_slice(preds.size(), false);
  std::unordered_map<Var, bool> var_done;
  std::queue<std::size_t> work;
  work.push(seed);
  in_slice[seed] = true;
  while (!work.empty()) {
    const std::size_t i = work.front();
    work.pop();
    for (Var v : vars_of[i]) {
      auto& done = var_done[v];
      if (done) continue;
      done = true;
      for (std::size_t j : by_var[v]) {
        if (!in_slice[j]) {
          in_slice[j] = true;
          work.push(j);
        }
      }
    }
  }
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < preds.size(); ++i) {
    if (in_slice[i]) out.push_back(i);
  }
  return out;
}

namespace {

/// Overlays a solved slice model onto `previous`, computing the
/// changed-variable set — the merge step shared by the search path and the
/// cache-hit path (both must produce identical SolveResults).
void merge_model(const Assignment& previous,
                 const std::vector<std::pair<Var, std::int64_t>>& model,
                 SolveResult& result) {
  result.sat = true;
  result.values = previous;
  for (const auto& [v, value] : model) {
    auto it = previous.find(v);
    if (it == previous.end() || it->second != value) {
      result.changed.push_back(v);
    }
    result.values[v] = value;
  }
  std::sort(result.changed.begin(), result.changed.end());
}

}  // namespace

SolveResult Solver::solve_incremental(std::span<const Predicate> preds,
                                      const DomainMap& domains,
                                      const Assignment& previous,
                                      SolveCache* cache) const {
  obs::ObsSpan span(obs::Cat::kSolver, "solve_incremental", "constraints",
                    static_cast<std::int64_t>(preds.size()));
  SolveResult result;
  if (preds.empty()) {
    result.sat = true;
    result.values = previous;
    return result;
  }

  const std::vector<std::size_t> slice =
      dependency_slice(preds, preds.size() - 1);
  result.slice_size = slice.size();
  std::vector<Predicate> sub;
  sub.reserve(slice.size());
  std::vector<Var> slice_vars;
  for (std::size_t i : slice) {
    sub.push_back(preds[i]);
    preds[i].expr.collect_vars(slice_vars);
  }

  // Restrict domains to the slice's variables (plus their declared bounds).
  DomainMap sub_domains;
  for (Var v : slice_vars) sub_domains[v] = domain_of(domains, v);

  NormalizedSlice norm;
  if (cache != nullptr) {
    norm = normalize_slice(sub, sub_domains, previous);
    CachedSolve hit;
    if (cache->lookup(norm.key, &hit)) {
      result.cache_hit = true;
      span.set_arg("nodes", 0);
      if (!hit.sat) return result;  // proven UNSAT
      std::vector<std::pair<Var, std::int64_t>> model;
      model.reserve(norm.vars.size());
      for (std::size_t i = 0; i < norm.vars.size(); ++i) {
        model.emplace_back(norm.vars[i], hit.values[i]);
      }
      merge_model(previous, model, result);
      return result;
    }
  }

  const std::optional<Assignment> solved =
      solve(sub, sub_domains, previous, &result.budget_exhausted,
            &result.nodes_searched);
  span.set_arg("nodes", result.nodes_searched);

  // Memoize definitive verdicts only: a budget-bound "unknown" may flip
  // under a relaxed budget and must never be replayed as an answer.
  if (cache != nullptr && (solved.has_value() || !result.budget_exhausted)) {
    CachedSolve entry;
    entry.sat = solved.has_value();
    entry.nodes_searched = result.nodes_searched;
    if (solved) {
      entry.values.reserve(norm.vars.size());
      for (Var v : norm.vars) entry.values.push_back(solved->at(v));
    }
    cache->insert(norm.key, std::move(entry));
  }
  if (!solved) return result;  // UNSAT / budget exhausted

  std::vector<std::pair<Var, std::int64_t>> model(solved->begin(),
                                                  solved->end());
  merge_model(previous, model, result);
  return result;
}

}  // namespace compi::solver
