// Solver memoization: normalized dependency-slice -> SolveResult.
//
// Concolic campaigns re-issue near-identical incremental queries
// constantly: a restart replays the same sanity-check prefix, and parallel
// workers flip neighbouring branches of the same path, producing dependency
// slices that differ only in variable ids.  The cache canonicalizes a slice
// (variables renamed in first-occurrence order, predicates in slice order,
// each variable's solve domain and preferred value appended) into a string
// key, so any two queries that the solver would answer identically share
// one entry regardless of which worker — or which registry's variable
// numbering — produced them.
//
// Only *definitive* answers are cached: a SAT model, or an UNSAT proof
// reached without tripping the node budget.  Budget-exhausted verdicts are
// "unknown" (a relaxed-budget retry may flip them) and are never stored.
// Because the key includes the preferred (previous) values of every slice
// variable, a hit reproduces the exact model the deterministic search would
// have found — cache-on and cache-off campaigns return bit-identical
// SolveResults (the property-based suite asserts this equivalence).
//
// The cache is LRU-bounded and internally locked: parallel workers share
// one instance.  Hit/miss/eviction counts feed the obs metrics registry
// (compi_solver_cache_{hits,misses,evictions}_total in metrics.prom).
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "solver/predicate.h"
#include "solver/propagation.h"

namespace compi::solver {

/// The canonicalized form of one incremental query's dependency slice.
struct NormalizedSlice {
  /// Cache key: predicates with canonical variable ids, plus per-variable
  /// domain and preferred value, rendered deterministically.
  std::string key;
  /// canonical id (index) -> original Var, in first-occurrence order over
  /// the slice predicates.  Denormalizes a cached model back into the
  /// caller's variable numbering.
  std::vector<Var> vars;
};

/// What a definitive solve stored: the verdict plus the model in canonical
/// variable ids (values[i] belongs to canonical variable i).
struct CachedSolve {
  bool sat = false;
  std::vector<std::int64_t> values;  // canonical ids; empty when UNSAT
  std::int64_t nodes_searched = 0;   // what the original search cost
};

class SolveCache {
 public:
  /// `capacity` = maximum entries held; least-recently-used entries are
  /// evicted past it.  0 behaves like capacity 1.
  explicit SolveCache(std::size_t capacity);

  /// Looks up a normalized key; promotes the entry to most-recently-used.
  [[nodiscard]] bool lookup(const std::string& key, CachedSolve* out);

  /// Stores a definitive result (idempotent for an existing key).
  void insert(const std::string& key, CachedSolve value);

  // Counter accessors lock like everything else: the live control plane
  // reads them from the server thread while workers are mid-lookup.
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::int64_t hits() const {
    std::lock_guard<std::mutex> lock(mu_);
    return hits_;
  }
  [[nodiscard]] std::int64_t misses() const {
    std::lock_guard<std::mutex> lock(mu_);
    return misses_;
  }
  [[nodiscard]] std::int64_t evictions() const {
    std::lock_guard<std::mutex> lock(mu_);
    return evictions_;
  }

 private:
  mutable std::mutex mu_;
  std::size_t capacity_;
  /// Most-recently-used first.
  std::list<std::pair<std::string, CachedSolve>> entries_;
  std::unordered_map<std::string,
                     std::list<std::pair<std::string, CachedSolve>>::iterator>
      index_;
  std::int64_t hits_ = 0;
  std::int64_t misses_ = 0;
  std::int64_t evictions_ = 0;
};

/// Canonicalizes one dependency slice: `slice_preds` in slice order, each
/// variable's effective solve domain from `domains`, and its preferred
/// value from `prefer` (absent entries rendered distinctly — preference
/// changes the deterministic search order, so it is part of the identity).
[[nodiscard]] NormalizedSlice normalize_slice(
    std::span<const Predicate> slice_preds, const DomainMap& domains,
    const std::unordered_map<Var, std::int64_t>& prefer);

}  // namespace compi::solver
