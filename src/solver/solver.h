// The constraint solver (Yices substitute).
//
// Solves conjunctions of linear integer predicates over bounded domains via
// interval propagation + backtracking search, and offers the *incremental*
// mode concolic testing uses (paper §III-C "Incremental solving property"):
// only the constraints transitively sharing variables with the negated
// constraint are re-solved; every other variable keeps its previous value.
// The result therefore distinguishes *changed* variables (whose values are
// "most up-to-date") from stale ones — the property COMPI's rank-conflict
// resolution depends on.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "solver/cache.h"
#include "solver/predicate.h"
#include "solver/propagation.h"

namespace compi::solver {

/// A full assignment of values to variables.
using Assignment = std::unordered_map<Var, std::int64_t>;

struct SolverOptions {
  /// Backtracking-search node budget; exceeding it reports "unsolved"
  /// (treated by the driver like an UNSAT/solver-timeout, as with Yices).
  std::int64_t max_search_nodes = 200'000;
  /// Values enumerated exhaustively when a domain is at most this wide.
  std::int64_t exhaustive_width = 512;
};

/// Result of an incremental solve.
struct SolveResult {
  bool sat = false;
  Assignment values;           // complete (solved vars merged over previous)
  std::vector<Var> changed;    // vars whose value differs from the previous
  /// Unsat verdict was forced by the node budget, not proven: the query is
  /// *unknown* and may succeed with a larger budget (transient failure —
  /// the driver retries these with a relaxed budget before giving up).
  bool budget_exhausted = false;
  /// Backtracking-search nodes expanded by this query (per-iteration solver
  /// cost accounting: iterations.csv's solver_nodes column).
  std::int64_t nodes_searched = 0;
  /// Constraints in the dependency slice actually re-solved (the journal's
  /// per-solve cost signal; 0 for the empty-set fast path).
  std::size_t slice_size = 0;
  /// Answered from the memoization cache: no search ran (nodes_searched is
  /// 0) but the verdict and model are exactly what the search would have
  /// produced (the cache key covers everything the search depends on).
  bool cache_hit = false;
};

class Solver {
 public:
  explicit Solver(SolverOptions opts = {}) : opts_(opts) {}

  /// Solves the conjunction of `preds` over `domains`.  `prefer` supplies
  /// values to try first (the previous test's inputs), which both speeds up
  /// search and maximizes value reuse.  Returns values for every variable
  /// appearing in `preds` or `domains`; nullopt when UNSAT or budget-bound
  /// (`budget_exhausted`, when given, tells the two apart).
  [[nodiscard]] std::optional<Assignment> solve(
      std::span<const Predicate> preds, const DomainMap& domains,
      const Assignment& prefer = {},
      bool* budget_exhausted = nullptr,
      std::int64_t* nodes_searched = nullptr) const;

  /// CREST-style incremental solve.  `preds` is the updated constraint set
  /// whose *last* element is the freshly negated constraint; `previous` is
  /// the input assignment that satisfied the un-negated set.  Re-solves only
  /// the dependency slice of the last constraint and keeps previous values
  /// elsewhere.  A non-null `cache` memoizes definitive answers keyed on
  /// the normalized slice (cache.h): hits skip the search entirely while
  /// returning the identical verdict/model/changed-set.
  [[nodiscard]] SolveResult solve_incremental(std::span<const Predicate> preds,
                                              const DomainMap& domains,
                                              const Assignment& previous,
                                              SolveCache* cache = nullptr) const;

  /// Indices of `preds` transitively sharing variables with `preds[seed]`
  /// (the dependency slice used by incremental solving).  Exposed for tests.
  [[nodiscard]] static std::vector<std::size_t> dependency_slice(
      std::span<const Predicate> preds, std::size_t seed);

 private:
  SolverOptions opts_;
};

}  // namespace compi::solver
