#include "solver/linear_expr.h"

#include <algorithm>
#include <sstream>

namespace compi::solver {

LinearExpr::LinearExpr(Var var, std::int64_t coeff, std::int64_t constant)
    : constant_(constant) {
  if (coeff != 0) terms_.push_back({var, coeff});
}

std::int64_t LinearExpr::coeff_of(Var v) const {
  auto it = std::lower_bound(
      terms_.begin(), terms_.end(), v,
      [](const Term& t, Var target) { return t.var < target; });
  return (it != terms_.end() && it->var == v) ? it->coeff : 0;
}

void LinearExpr::add_term(Var var, std::int64_t coeff) {
  if (coeff == 0) return;
  auto it = std::lower_bound(
      terms_.begin(), terms_.end(), var,
      [](const Term& t, Var target) { return t.var < target; });
  if (it != terms_.end() && it->var == var) {
    it->coeff = sat_add(it->coeff, coeff);
    if (it->coeff == 0) terms_.erase(it);
  } else {
    terms_.insert(it, {var, coeff});
  }
}

LinearExpr& LinearExpr::operator+=(const LinearExpr& o) {
  for (const Term& t : o.terms_) add_term(t.var, t.coeff);
  constant_ = sat_add(constant_, o.constant_);
  return *this;
}

LinearExpr& LinearExpr::operator-=(const LinearExpr& o) {
  for (const Term& t : o.terms_) add_term(t.var, -t.coeff);
  constant_ = sat_add(constant_, -o.constant_);
  return *this;
}

LinearExpr& LinearExpr::operator*=(std::int64_t c) {
  if (c == 0) {
    terms_.clear();
    constant_ = 0;
    return *this;
  }
  for (Term& t : terms_) t.coeff = sat_mul(t.coeff, c);
  constant_ = sat_mul(constant_, c);
  return *this;
}

LinearExpr LinearExpr::negated() const {
  LinearExpr r = *this;
  r *= -1;
  return r;
}

void LinearExpr::collect_vars(std::vector<Var>& out) const {
  for (const Term& t : terms_) {
    auto it = std::lower_bound(out.begin(), out.end(), t.var);
    if (it == out.end() || *it != t.var) out.insert(it, t.var);
  }
}

std::string LinearExpr::to_string() const {
  std::ostringstream os;
  bool first = true;
  for (const Term& t : terms_) {
    if (!first) os << (t.coeff >= 0 ? " + " : " - ");
    const std::int64_t mag = first ? t.coeff : std::abs(t.coeff);
    if (mag != 1) os << mag << '*';
    os << 'x' << t.var;
    first = false;
  }
  if (first) {
    os << constant_;
  } else if (constant_ != 0) {
    os << (constant_ > 0 ? " + " : " - ") << std::abs(constant_);
  }
  return os.str();
}

}  // namespace compi::solver
