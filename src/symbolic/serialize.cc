#include "symbolic/serialize.h"

#include <charconv>
#include <istream>
#include <ostream>

namespace compi::serial {

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

std::string unescape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\' || i + 1 == s.size()) {
      out.push_back(s[i]);
      continue;
    }
    switch (s[++i]) {
      case 'n': out.push_back('\n'); break;
      case 'r': out.push_back('\r'); break;
      default: out.push_back(s[i]);
    }
  }
  return out;
}

std::string format_double(double v) {
  char buf[64];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  return ec == std::errc{} ? std::string(buf, ptr) : std::string("0");
}

void write_predicate(std::ostream& os, const solver::Predicate& p) {
  os << static_cast<int>(p.op) << ' ' << p.expr.constant_part() << ' '
     << p.expr.num_terms();
  for (const solver::Term& t : p.expr.terms()) {
    os << ' ' << t.var << ' ' << t.coeff;
  }
}

bool read_predicate(std::istream& is, solver::Predicate& p) {
  int op = 0;
  std::int64_t constant = 0;
  std::size_t nterms = 0;
  if (!(is >> op >> constant >> nterms)) return false;
  solver::LinearExpr expr(constant);
  for (std::size_t i = 0; i < nterms; ++i) {
    solver::Var v = 0;
    std::int64_t coeff = 0;
    if (!(is >> v >> coeff)) return false;
    expr.add_term(v, coeff);
  }
  p.expr = std::move(expr);
  p.op = static_cast<solver::CompareOp>(op);
  return true;
}

void write_path(std::ostream& os, const sym::Path& path) {
  os << path.size() << '\n';
  for (const sym::PathEntry& e : path.entries()) {
    os << e.site << ' ' << (e.taken ? 1 : 0) << ' ';
    write_predicate(os, e.constraint);
    os << '\n';
  }
}

bool read_path(std::istream& is, sym::Path& path) {
  std::size_t n = 0;
  if (!(is >> n)) return false;
  path.clear();
  for (std::size_t i = 0; i < n; ++i) {
    sym::SiteId site = 0;
    int taken = 0;
    solver::Predicate p;
    if (!(is >> site >> taken) || !read_predicate(is, p)) return false;
    path.append(site, taken != 0, std::move(p));
  }
  return true;
}

}  // namespace compi::serial
