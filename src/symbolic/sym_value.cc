#include "symbolic/sym_value.h"

#include "solver/interval.h"

namespace compi::sym {

SymInt operator+(const SymInt& a, const SymInt& b) {
  const std::int64_t v = solver::sat_add(a.value(), b.value());
  if (!a.is_symbolic() && !b.is_symbolic()) return {v};
  LinearExpr e = a.is_symbolic() ? a.expr() : LinearExpr(a.value());
  e += b.is_symbolic() ? b.expr() : LinearExpr(b.value());
  return {v, std::move(e)};
}

SymInt operator-(const SymInt& a, const SymInt& b) {
  const std::int64_t v = solver::sat_add(a.value(), -b.value());
  if (!a.is_symbolic() && !b.is_symbolic()) return {v};
  LinearExpr e = a.is_symbolic() ? a.expr() : LinearExpr(a.value());
  e -= b.is_symbolic() ? b.expr() : LinearExpr(b.value());
  return {v, std::move(e)};
}

SymInt operator-(const SymInt& a) {
  if (!a.is_symbolic()) return {-a.value()};
  return {-a.value(), a.expr().negated()};
}

SymInt operator*(const SymInt& a, const SymInt& b) {
  const std::int64_t v = solver::sat_mul(a.value(), b.value());
  // Linearization: symbolic * symbolic keeps the left operand symbolic and
  // concretizes the right (CREST's behaviour for non-linear arithmetic).
  if (a.is_symbolic()) {
    LinearExpr e = a.expr();
    e *= b.value();
    return e.is_constant() && e.constant_part() == v ? SymInt(v)
                                                     : SymInt(v, std::move(e));
  }
  if (b.is_symbolic()) {
    LinearExpr e = b.expr();
    e *= a.value();
    return e.is_constant() && e.constant_part() == v ? SymInt(v)
                                                     : SymInt(v, std::move(e));
  }
  return {v};
}

SymInt operator/(const SymInt& a, const SymInt& b) {
  // Division is non-linear: the result is concrete.
  return {a.value() / b.value()};
}

SymInt operator%(const SymInt& a, const SymInt& b) {
  return {a.value() % b.value()};
}

SymBool compare(const SymInt& a, CompareOp op, const SymInt& b) {
  const std::int64_t d = solver::sat_add(a.value(), -b.value());
  bool outcome = false;
  switch (op) {
    case CompareOp::kEq: outcome = d == 0; break;
    case CompareOp::kNeq: outcome = d != 0; break;
    case CompareOp::kLt: outcome = d < 0; break;
    case CompareOp::kLe: outcome = d <= 0; break;
    case CompareOp::kGt: outcome = d > 0; break;
    case CompareOp::kGe: outcome = d >= 0; break;
  }
  if (!a.is_symbolic() && !b.is_symbolic()) return {outcome};
  LinearExpr e = a.is_symbolic() ? a.expr() : LinearExpr(a.value());
  e -= b.is_symbolic() ? b.expr() : LinearExpr(b.value());
  if (e.is_constant()) return {outcome};  // symbolic parts cancelled
  return {outcome, Predicate{std::move(e), op}};
}

}  // namespace compi::sym
