// Execution paths: the per-run symbolic history concolic testing consumes.
//
// A Path records, in execution order, every branch the focus process took
// whose condition was symbolic, together with the constraint satisfied by
// the taken direction.  Negating the constraint at position i (and keeping
// positions [0, i) as-is) asks the solver for inputs that steer execution
// down the other side of that branch — the core move of concolic testing.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "solver/predicate.h"

namespace compi::sym {

/// Static branch-site identifier (index into a target's BranchTable).
using SiteId = std::int32_t;

/// Branch id: 2*site for the FALSE arm, 2*site+1 for the TRUE arm.
using BranchId = std::int32_t;

[[nodiscard]] constexpr BranchId branch_id(SiteId site, bool taken) {
  return static_cast<BranchId>(site) * 2 + (taken ? 1 : 0);
}
[[nodiscard]] constexpr SiteId site_of(BranchId b) { return b / 2; }
[[nodiscard]] constexpr bool direction_of(BranchId b) { return (b & 1) != 0; }

/// One recorded symbolic branch.
struct PathEntry {
  SiteId site = 0;
  bool taken = false;
  /// Constraint satisfied by the taken direction.
  solver::Predicate constraint;
};

/// The symbolic execution history of one run of the focus process.
class Path {
 public:
  void clear() { entries_.clear(); }
  void append(SiteId site, bool taken, solver::Predicate constraint) {
    entries_.push_back({site, taken, std::move(constraint)});
  }

  [[nodiscard]] bool empty() const { return entries_.empty(); }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] const PathEntry& operator[](std::size_t i) const {
    return entries_[i];
  }
  [[nodiscard]] const std::vector<PathEntry>& entries() const {
    return entries_;
  }

  /// Constraint set for "follow this path up to (but excluding) `depth`,
  /// then diverge at `depth`": entries [0, depth) as satisfied, plus the
  /// negation of entry `depth` as the last element (the convention
  /// Solver::solve_incremental expects).
  [[nodiscard]] std::vector<solver::Predicate> constraints_negating(
      std::size_t depth) const;

  /// All constraints as satisfied by this execution.
  [[nodiscard]] std::vector<solver::Predicate> all_constraints() const;

  /// True when `other` starts with the same (site, direction) sequence as
  /// this path's first `depth` entries, and entry `depth` (when present in
  /// both) covers the same site with the opposite direction.  Used for the
  /// DFS "prediction" check.
  [[nodiscard]] bool diverges_as_predicted(const Path& other,
                                           std::size_t depth) const;

 private:
  std::vector<PathEntry> entries_;
};

}  // namespace compi::sym
