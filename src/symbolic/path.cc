#include "symbolic/path.h"

namespace compi::sym {

std::vector<solver::Predicate> Path::constraints_negating(
    std::size_t depth) const {
  std::vector<solver::Predicate> out;
  out.reserve(depth + 1);
  for (std::size_t i = 0; i < depth; ++i) {
    out.push_back(entries_[i].constraint);
  }
  out.push_back(entries_[depth].constraint.negated());
  return out;
}

std::vector<solver::Predicate> Path::all_constraints() const {
  std::vector<solver::Predicate> out;
  out.reserve(entries_.size());
  for (const PathEntry& e : entries_) out.push_back(e.constraint);
  return out;
}

bool Path::diverges_as_predicted(const Path& other, std::size_t depth) const {
  if (other.size() <= depth || size() <= depth) return false;
  for (std::size_t i = 0; i < depth; ++i) {
    if (entries_[i].site != other.entries_[i].site ||
        entries_[i].taken != other.entries_[i].taken) {
      return false;
    }
  }
  return entries_[depth].site == other.entries_[depth].site &&
         entries_[depth].taken != other.entries_[depth].taken;
}

}  // namespace compi::sym
