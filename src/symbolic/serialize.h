// Low-level text serialization shared by every on-disk / on-wire format:
// the campaign checkpoint, session files, and the sandbox supervisor's
// pipe protocol all speak the same line-oriented dialect.
//
// Strings are escaped (\n, \r, \\) so multi-line fault messages fit on one
// line; doubles use shortest-round-trip formatting so restored timings are
// bit-exact; predicates and paths round-trip through the same two helpers
// everywhere, keeping the formats mutually consistent.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "solver/predicate.h"
#include "symbolic/path.h"

namespace compi::serial {

/// Escapes backslashes and line breaks so any string fits on one line.
[[nodiscard]] std::string escape(std::string_view s);
[[nodiscard]] std::string unescape(std::string_view s);

/// Shortest string that parses back to exactly `v`.
[[nodiscard]] std::string format_double(double v);

/// One-line predicate / multi-line path round-trips.
void write_predicate(std::ostream& os, const solver::Predicate& p);
[[nodiscard]] bool read_predicate(std::istream& is, solver::Predicate& p);
void write_path(std::ostream& os, const sym::Path& path);
[[nodiscard]] bool read_path(std::istream& is, sym::Path& path);

}  // namespace compi::serial
