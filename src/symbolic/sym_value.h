// Concolic values: a concrete value paired with an optional symbolic
// (linear) expression over marked input variables.
//
// Mirrors CREST's semantics exactly:
//  * every value always has a concrete part — execution is never blocked;
//  * symbolic expressions stay linear: a product of two symbolic values
//    concretizes the right operand; division/modulo concretize the result
//    (the classic concolic simplification, paper §I-A);
//  * comparing two values produces a SymBool whose predicate holds iff the
//    comparison is true, ready to be recorded as a path constraint.
#pragma once

#include <cstdint>
#include <optional>

#include "solver/predicate.h"

namespace compi::sym {

using solver::CompareOp;
using solver::LinearExpr;
using solver::Predicate;
using solver::Var;

/// A concolic integer.
class SymInt {
 public:
  SymInt() = default;
  /// Purely concrete value.
  SymInt(std::int64_t concrete) : concrete_(concrete) {}  // NOLINT: implicit by design
  /// Symbolic input variable with its current concrete value.
  SymInt(std::int64_t concrete, Var var)
      : concrete_(concrete), expr_(LinearExpr::variable(var)) {}
  SymInt(std::int64_t concrete, LinearExpr expr)
      : concrete_(concrete), expr_(std::move(expr)) {}

  [[nodiscard]] std::int64_t value() const { return concrete_; }
  [[nodiscard]] bool is_symbolic() const { return expr_.has_value(); }
  [[nodiscard]] const LinearExpr& expr() const { return *expr_; }

  /// Drops the symbolic part (used when a value flows through an operation
  /// the symbolic engine cannot track).
  [[nodiscard]] SymInt concretized() const { return SymInt(concrete_); }

  friend SymInt operator+(const SymInt& a, const SymInt& b);
  friend SymInt operator-(const SymInt& a, const SymInt& b);
  friend SymInt operator*(const SymInt& a, const SymInt& b);
  friend SymInt operator-(const SymInt& a);

  /// Integer division.  Callers must ensure b.value() != 0; the runtime
  /// layer (RuntimeContext::div) performs the checked version that raises a
  /// simulated SIGFPE.  The result is concrete (non-linear).
  friend SymInt operator/(const SymInt& a, const SymInt& b);
  friend SymInt operator%(const SymInt& a, const SymInt& b);

 private:
  std::int64_t concrete_ = 0;
  std::optional<LinearExpr> expr_;
};

/// A concolic boolean: the concrete outcome of a comparison plus, when any
/// operand was symbolic, the predicate that holds iff the outcome is true.
class SymBool {
 public:
  SymBool() = default;
  SymBool(bool concrete) : concrete_(concrete) {}  // NOLINT: implicit by design
  SymBool(bool concrete, Predicate pred)
      : concrete_(concrete), pred_(std::move(pred)) {}

  [[nodiscard]] bool value() const { return concrete_; }
  [[nodiscard]] bool is_symbolic() const { return pred_.has_value(); }
  /// Predicate that holds iff the condition is TRUE.
  [[nodiscard]] const Predicate& predicate() const { return *pred_; }

  /// Predicate satisfied by the direction actually taken: the predicate
  /// itself when true, its negation when false.
  [[nodiscard]] Predicate taken_predicate() const {
    return concrete_ ? *pred_ : pred_->negated();
  }

  [[nodiscard]] SymBool operator!() const {
    if (pred_) return {!concrete_, pred_->negated()};
    return {!concrete_};
  }

 private:
  bool concrete_ = false;
  std::optional<Predicate> pred_;
};

/// Comparison `a op b`, normalized to `(a - b) op 0`.
[[nodiscard]] SymBool compare(const SymInt& a, CompareOp op, const SymInt& b);

[[nodiscard]] inline SymBool operator==(const SymInt& a, const SymInt& b) {
  return compare(a, CompareOp::kEq, b);
}
[[nodiscard]] inline SymBool operator!=(const SymInt& a, const SymInt& b) {
  return compare(a, CompareOp::kNeq, b);
}
[[nodiscard]] inline SymBool operator<(const SymInt& a, const SymInt& b) {
  return compare(a, CompareOp::kLt, b);
}
[[nodiscard]] inline SymBool operator<=(const SymInt& a, const SymInt& b) {
  return compare(a, CompareOp::kLe, b);
}
[[nodiscard]] inline SymBool operator>(const SymInt& a, const SymInt& b) {
  return compare(a, CompareOp::kGt, b);
}
[[nodiscard]] inline SymBool operator>=(const SymInt& a, const SymInt& b) {
  return compare(a, CompareOp::kGe, b);
}

}  // namespace compi::sym
