#include "cli/cli_options.h"

#include <charconv>
#include <sstream>

namespace compi::cli {
namespace {

/// Splits "--flag=value" into (flag, value); value empty for bare flags.
std::pair<std::string, std::string> split_flag(const std::string& arg) {
  const auto eq = arg.find('=');
  if (eq == std::string::npos) return {arg, ""};
  return {arg.substr(0, eq), arg.substr(eq + 1)};
}

std::optional<std::int64_t> parse_int(const std::string& s) {
  std::int64_t value = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return value;
}

std::optional<double> parse_double(const std::string& s) {
  if (s.empty()) return std::nullopt;
  double value = 0.0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return value;
}

std::optional<SearchKind> parse_strategy(const std::string& s) {
  if (s == "bounded-dfs") return SearchKind::kBoundedDfs;
  if (s == "dfs") return SearchKind::kDfs;
  if (s == "random-branch") return SearchKind::kRandomBranch;
  if (s == "uniform-random") return SearchKind::kUniformRandom;
  if (s == "cfg") return SearchKind::kCfg;
  if (s == "generational") return SearchKind::kGenerational;
  return std::nullopt;
}

}  // namespace

ParseResult parse_cli(const std::vector<std::string>& args) {
  ParseResult result;
  CliConfig& cfg = result.config;
  auto fail = [&](const std::string& msg) {
    result.error = msg;
    return result;
  };

  // `compi top <target> [--interval-ms=N] [--frames=N]` — the first
  // positional argument selects the subcommand; the target is the second.
  if (!args.empty() && args[0] == "top") {
    cfg.top = true;
    for (std::size_t i = 1; i < args.size(); ++i) {
      const auto [flag, value] = split_flag(args[i]);
      if (flag == "--interval-ms") {
        const auto v = parse_int(value);
        if (!v || *v < 50 || *v > 60'000) {
          return fail("--interval-ms needs 50..60000");
        }
        cfg.top_interval_ms = static_cast<int>(*v);
      } else if (flag == "--frames") {
        const auto v = parse_int(value);
        if (!v || *v < 0 || *v > 1'000'000) {
          return fail("--frames needs 0..1000000");
        }
        cfg.top_frames = static_cast<int>(*v);
      } else if (flag == "--fleet") {
        cfg.top_fleet = true;
      } else if (flag == "--help" || flag == "-h") {
        cfg.show_help = true;
      } else if (!flag.empty() && flag[0] == '-') {
        return fail("unknown flag '" + flag + "' for compi top");
      } else if (cfg.top_target.empty()) {
        cfg.top_target = args[i];
      } else {
        return fail("compi top takes one target (host:port or status file)");
      }
    }
    if (!cfg.show_help && cfg.top_target.empty()) {
      return fail("compi top needs a target: host:port or a status file");
    }
    return result;
  }

  // `compi trace-merge [--coordinator=DIR] [--out=PATH] SHARD_DIR...` —
  // stitch a distributed campaign's Chrome traces into one timeline.
  if (!args.empty() && args[0] == "trace-merge") {
    cfg.trace_merge = true;
    for (std::size_t i = 1; i < args.size(); ++i) {
      const auto [flag, value] = split_flag(args[i]);
      if (flag == "--coordinator") {
        if (value.empty()) return fail("--coordinator needs a session dir");
        cfg.trace_merge_coordinator = value;
      } else if (flag == "--out") {
        if (value.empty()) return fail("--out needs a path");
        cfg.trace_merge_out = value;
      } else if (flag == "--help" || flag == "-h") {
        cfg.show_help = true;
      } else if (!flag.empty() && flag[0] == '-') {
        return fail("unknown flag '" + flag + "' for compi trace-merge");
      } else {
        cfg.trace_merge_shards.push_back(args[i]);
      }
    }
    if (!cfg.show_help && cfg.trace_merge_shards.empty() &&
        cfg.trace_merge_coordinator.empty()) {
      return fail("compi trace-merge needs shard session dirs "
                  "(and/or --coordinator=DIR)");
    }
    return result;
  }

  // `compi coordinate [--port=N] [--budget=N] ...` — the coordinator
  // process of a distributed campaign.  Shares the target/session flags
  // with the campaign mode; everything else is lease bookkeeping.
  if (!args.empty() && args[0] == "coordinate") {
    cfg.coordinate = true;
    for (std::size_t i = 1; i < args.size(); ++i) {
      const auto [flag, value] = split_flag(args[i]);
      const auto want_int = [&](std::int64_t lo,
                                std::int64_t hi) -> std::optional<std::int64_t> {
        const auto v = parse_int(value);
        if (!v || *v < lo || *v > hi) return std::nullopt;
        return v;
      };
      if (flag == "--port") {
        const auto v = want_int(0, 65'535);
        if (!v) return fail("--port needs 0..65535 (0 = ephemeral)");
        cfg.coord_port = static_cast<int>(*v);
      } else if (flag == "--budget") {
        const auto v = want_int(1, 1'000'000'000);
        if (!v) return fail("--budget needs a positive iteration count");
        cfg.coord_budget = *v;
      } else if (flag == "--lease-quota") {
        const auto v = want_int(1, 100'000);
        if (!v) return fail("--lease-quota needs 1..100000");
        cfg.coord_lease_quota = static_cast<int>(*v);
      } else if (flag == "--lease-ttl-ms") {
        const auto v = want_int(100, 3'600'000);
        if (!v) return fail("--lease-ttl-ms needs 100..3600000");
        cfg.coord_lease_ttl_ms = static_cast<int>(*v);
      } else if (flag == "--target") {
        if (value != "susy" && value != "susy-fixed" && value != "hpl" &&
            value != "imb") {
          return fail("unknown target '" + value + "'");
        }
        cfg.target = value;
      } else if (flag == "--cap") {
        const auto v = want_int(1, 1'000'000);
        if (!v) return fail("--cap needs a positive integer");
        cfg.cap = static_cast<int>(*v);
      } else if (flag == "--log-dir") {
        if (value.empty()) return fail("--log-dir needs a path");
        cfg.campaign.log_dir = value;
      } else if (flag == "--resume") {
        if (value.empty()) return fail("--resume needs a session directory");
        cfg.campaign.resume = true;
        cfg.resume_dir = value;
      } else if (flag == "--journal") {
        cfg.campaign.journal = true;
      } else if (flag == "--serve") {
        const auto v = want_int(0, 65'535);
        if (!v) return fail("--serve needs a port 0..65535 (0 = ephemeral)");
        cfg.campaign.serve_port = static_cast<int>(*v);
      } else if (flag == "--trace") {
        cfg.campaign.trace = true;
      } else if (flag == "--trace-buffer-kb") {
        const auto v = want_int(1, 1'048'576);
        if (!v) return fail("--trace-buffer-kb needs 1..1048576");
        cfg.campaign.trace_buffer_kb = static_cast<int>(*v);
      } else if (flag == "--stall-window") {
        const auto v = parse_double(value);
        if (!v || *v < 1.0 || *v > 86'400.0) {
          return fail("--stall-window needs seconds in 1..86400");
        }
        cfg.campaign.stall_window_seconds = *v;
      } else if (flag == "--help" || flag == "-h") {
        cfg.show_help = true;
      } else {
        return fail("unknown flag '" + flag + "' for compi coordinate");
      }
    }
    if (!cfg.resume_dir.empty()) {
      if (!cfg.campaign.log_dir.empty() &&
          cfg.campaign.log_dir != cfg.resume_dir) {
        return fail("--resume already names the session; drop --log-dir");
      }
      cfg.campaign.log_dir = cfg.resume_dir;
    }
    return result;
  }

  for (const std::string& arg : args) {
    const auto [flag, value] = split_flag(arg);
    auto want_int = [&](std::int64_t lo,
                        std::int64_t hi) -> std::optional<std::int64_t> {
      const auto v = parse_int(value);
      if (!v || *v < lo || *v > hi) return std::nullopt;
      return v;
    };

    if (flag == "--help" || flag == "-h") {
      cfg.show_help = true;
    } else if (flag == "--list-targets") {
      cfg.list_targets = true;
    } else if (flag == "--target") {
      if (value != "susy" && value != "susy-fixed" && value != "hpl" &&
          value != "imb") {
        return fail("unknown target '" + value + "'");
      }
      cfg.target = value;
    } else if (flag == "--iterations") {
      const auto v = want_int(1, 100'000'000);
      if (!v) return fail("--iterations needs a positive integer");
      cfg.campaign.iterations = static_cast<int>(*v);
    } else if (flag == "--time-budget") {
      const auto v = want_int(0, 1'000'000);
      if (!v) return fail("--time-budget needs seconds >= 0");
      cfg.campaign.time_budget_seconds = static_cast<double>(*v);
    } else if (flag == "--strategy") {
      const auto s = parse_strategy(value);
      if (!s) return fail("unknown strategy '" + value + "'");
      cfg.campaign.search = *s;
    } else if (flag == "--cap") {
      const auto v = want_int(1, 1'000'000);
      if (!v) return fail("--cap needs a positive integer");
      cfg.cap = static_cast<int>(*v);
    } else if (flag == "--nprocs") {
      const auto v = want_int(1, 1024);
      if (!v) return fail("--nprocs needs 1..1024");
      cfg.campaign.initial_nprocs = static_cast<int>(*v);
    } else if (flag == "--focus") {
      const auto v = want_int(0, 1023);
      if (!v) return fail("--focus needs 0..1023");
      cfg.campaign.initial_focus = static_cast<int>(*v);
    } else if (flag == "--max-procs") {
      const auto v = want_int(1, 1024);
      if (!v) return fail("--max-procs needs 1..1024");
      cfg.campaign.max_procs = static_cast<int>(*v);
    } else if (flag == "--dfs-phase") {
      const auto v = want_int(1, 100'000'000);
      if (!v) return fail("--dfs-phase needs a positive integer");
      cfg.campaign.dfs_phase_iterations = static_cast<int>(*v);
    } else if (flag == "--depth-bound") {
      const auto v = want_int(0, 100'000'000);
      if (!v) return fail("--depth-bound needs an integer >= 0");
      cfg.campaign.depth_bound = static_cast<int>(*v);
    } else if (flag == "--seed") {
      const auto v = parse_int(value);
      if (!v) return fail("--seed needs an integer");
      cfg.campaign.seed = static_cast<std::uint64_t>(*v);
    } else if (flag == "--log-dir") {
      if (value.empty()) return fail("--log-dir needs a path");
      cfg.campaign.log_dir = value;
    } else if (flag == "--resume") {
      if (value.empty()) return fail("--resume needs a session directory");
      cfg.campaign.resume = true;
      cfg.resume_dir = value;
    } else if (flag == "--checkpoint-interval") {
      const auto v = want_int(0, 100'000'000);
      if (!v) return fail("--checkpoint-interval needs an integer >= 0");
      cfg.campaign.checkpoint_interval = static_cast<int>(*v);
    } else if (flag == "--workers") {
      const auto v = want_int(1, 256);
      if (!v) return fail("--workers needs 1..256");
      cfg.campaign.workers = static_cast<int>(*v);
    } else if (flag == "--solver-cache") {
      const auto v = want_int(0, 10'000'000);
      if (!v) return fail("--solver-cache needs entries >= 0");
      cfg.campaign.solver_cache_entries = static_cast<int>(*v);
    } else if (flag == "--explore-matchings") {
      cfg.campaign.explore_matchings = true;
    } else if (flag == "--max-interleavings") {
      const auto v = want_int(0, 10'000'000);
      if (!v) return fail("--max-interleavings needs an integer >= 0");
      cfg.campaign.max_interleavings = static_cast<int>(*v);
    } else if (flag == "--isolate") {
      cfg.campaign.isolate = true;
    } else if (flag == "--fork-server") {
      if (value == "on") {
        cfg.campaign.fork_server = true;
      } else if (value == "off") {
        cfg.campaign.fork_server = false;
      } else {
        return fail("--fork-server needs on|off");
      }
    } else if (flag == "--fork-server-restarts") {
      const auto v = want_int(0, 1000);
      if (!v) return fail("--fork-server-restarts needs 0..1000");
      cfg.campaign.fork_server_restarts = static_cast<int>(*v);
    } else if (flag == "--batch-reset") {
      cfg.campaign.batch_reset = true;
    } else if (flag == "--batch-warmup") {
      const auto v = want_int(1, 1'000'000);
      if (!v) return fail("--batch-warmup needs 1..1000000");
      cfg.campaign.batch_warmup = static_cast<int>(*v);
    } else if (flag == "--hang-timeout-ms") {
      const auto v = want_int(0, 86'400'000);
      if (!v) return fail("--hang-timeout-ms needs 0..86400000");
      cfg.campaign.hang_timeout_ms = static_cast<int>(*v);
    } else if (flag == "--child-mem-mb") {
      const auto v = want_int(0, 1'048'576);
      if (!v) return fail("--child-mem-mb needs 0..1048576");
      cfg.campaign.child_mem_mb = static_cast<int>(*v);
    } else if (flag == "--retry-max") {
      const auto v = want_int(0, 10);
      if (!v) return fail("--retry-max needs 0..10");
      cfg.campaign.retry_max = static_cast<int>(*v);
    } else if (flag == "--retry-backoff-ms") {
      const auto v = want_int(0, 60'000);
      if (!v) return fail("--retry-backoff-ms needs 0..60000");
      cfg.campaign.retry_backoff_ms = static_cast<int>(*v);
    } else if (flag == "--chaos-seed") {
      const auto v = parse_int(value);
      if (!v) return fail("--chaos-seed needs an integer");
      cfg.campaign.chaos.seed = static_cast<std::uint64_t>(*v);
    } else if (flag == "--chaos-drop-rate") {
      const auto v = parse_double(value);
      if (!v || *v < 0.0 || *v > 1.0) {
        return fail("--chaos-drop-rate needs a probability in [0, 1]");
      }
      cfg.campaign.chaos.drop_rate = *v;
    } else if (flag == "--chaos-crash-rank") {
      const auto v = want_int(0, 1023);
      if (!v) return fail("--chaos-crash-rank needs 0..1023");
      cfg.campaign.chaos.crash_rank = static_cast<int>(*v);
    } else if (flag == "--chaos-crash-at") {
      const auto v = want_int(1, 1'000'000'000);
      if (!v) return fail("--chaos-crash-at needs a call number >= 1");
      cfg.campaign.chaos.crash_at_call = *v;
    } else if (flag == "--journal") {
      cfg.campaign.journal = true;
    } else if (flag == "--status-file") {
      if (value.empty()) return fail("--status-file needs a path");
      cfg.campaign.status_file = value;
    } else if (flag == "--stall-window") {
      const auto v = parse_double(value);
      if (!v || *v < 1.0 || *v > 86'400.0) {
        return fail("--stall-window needs seconds in 1..86400");
      }
      cfg.campaign.stall_window_seconds = *v;
    } else if (flag == "--serve") {
      const auto v = want_int(0, 65'535);
      if (!v) return fail("--serve needs a port 0..65535 (0 = ephemeral)");
      cfg.campaign.serve_port = static_cast<int>(*v);
    } else if (flag == "--max-bugs") {
      const auto v = want_int(0, 1'000'000);
      if (!v) return fail("--max-bugs needs an integer >= 0");
      cfg.campaign.max_bugs = static_cast<int>(*v);
    } else if (flag == "--connect") {
      if (value.empty()) return fail("--connect needs HOST:PORT");
      cfg.connect = value;
    } else if (flag == "--shard-name") {
      if (value.empty()) return fail("--shard-name needs a name");
      cfg.shard_name = value;
    } else if (flag == "--shard-heartbeat-ms") {
      const auto v = want_int(50, 3'600'000);
      if (!v) return fail("--shard-heartbeat-ms needs 50..3600000");
      cfg.shard_heartbeat_ms = static_cast<int>(*v);
    } else if (flag == "--explain") {
      if (value.empty()) return fail("--explain needs a session directory");
      cfg.explain_dir = value;
    } else if (flag == "--trace") {
      cfg.campaign.trace = true;
    } else if (flag == "--metrics") {
      cfg.campaign.metrics = true;
    } else if (flag == "--trace-buffer-kb") {
      const auto v = want_int(1, 1'048'576);
      if (!v) return fail("--trace-buffer-kb needs 1..1048576");
      cfg.campaign.trace_buffer_kb = static_cast<int>(*v);
    } else if (flag == "--no-confirm-bugs") {
      cfg.campaign.confirm_bugs = false;
    } else if (flag == "--no-reduction") {
      cfg.campaign.reduction = false;
    } else if (flag == "--no-framework") {
      cfg.campaign.framework = false;
    } else if (flag == "--one-way") {
      cfg.campaign.one_way = true;
    } else if (flag == "--random") {
      cfg.random_baseline = true;
    } else if (flag == "--curve") {
      cfg.print_curve = true;
    } else if (flag == "--functions") {
      cfg.print_functions = true;
    } else {
      return fail("unknown flag '" + flag + "'");
    }
  }

  if (cfg.campaign.initial_focus >= cfg.campaign.initial_nprocs) {
    return fail("--focus must be below --nprocs");
  }
  if (!cfg.resume_dir.empty()) {
    if (!cfg.campaign.log_dir.empty() &&
        cfg.campaign.log_dir != cfg.resume_dir) {
      return fail("--resume already names the session; drop --log-dir");
    }
    cfg.campaign.log_dir = cfg.resume_dir;
  }
  return result;
}

std::string usage() {
  std::ostringstream os;
  os << "compi — concolic testing for MPI programs (IPDPS'18 reproduction)\n"
        "\n"
        "usage: compi [--target=susy|susy-fixed|hpl|imb] [options]\n"
        "\n"
        "  --iterations=N       testing budget (default 500)\n"
        "  --time-budget=SECS   wall-clock budget, 0 = iterations only\n"
        "  --strategy=NAME      bounded-dfs (default) | dfs | random-branch\n"
        "                       | uniform-random | cfg | generational\n"
        "  --cap=N              input cap N_C (target default when omitted)\n"
        "  --nprocs=N --focus=N initial launch setup (default 8, 0)\n"
        "  --max-procs=N        cap on the process count (default 16)\n"
        "  --dfs-phase=N        pure-DFS iterations before BoundedDFS\n"
        "  --depth-bound=N      explicit bound (0 = derive from phase 1)\n"
        "  --seed=N             RNG seed\n"
        "  --log-dir=PATH       write per-iteration logs + iterations.csv\n"
        "  --resume=PATH        continue the checkpointed session in PATH\n"
        "  --checkpoint-interval=N  snapshot every N iterations (0 = off)\n"
        "  --workers=N          parallel campaign workers sharing one\n"
        "                       coverage map and negation frontier\n"
        "                       (default 1 = the serial driver, bit-identical\n"
        "                       sessions)\n"
        "  --solver-cache=N     memoize definitive solver answers, N entries\n"
        "                       LRU (0 = off); shared across workers\n"
        "  --explore-matchings  route tests through the match scheduler and\n"
        "                       enumerate alternative wildcard-receive\n"
        "                       matchings (exact deadlock / orphan-message\n"
        "                       detection; each reordering is a replayable\n"
        "                       campaign iteration)\n"
        "  --max-interleavings=N  cap on enqueued reorderings (default 64,\n"
        "                       0 = unlimited)\n"
        "  --isolate            run each test in a fork()ed child: real\n"
        "                       crashes/hangs are contained and recorded\n"
        "  --fork-server=on|off warm-snapshot spawns for --isolate (default\n"
        "                       on): fork each iteration from a long-lived\n"
        "                       server child instead of re-forking the tester\n"
        "  --fork-server-restarts=N\n"
        "                       server deaths absorbed before degrading to\n"
        "                       cold per-iteration fork (default 3)\n"
        "  --batch-reset        after --batch-warmup clean runs, execute\n"
        "                       iterations in-process (no fork at all) until\n"
        "                       a fault demotes back to the sandbox\n"
        "  --batch-warmup=N     clean runs required to earn the fast path\n"
        "                       (default 3)\n"
        "  --hang-timeout-ms=N  SIGKILL a sandboxed child after N ms of\n"
        "                       wall clock (0 = 2x test timeout + 2 s)\n"
        "  --child-mem-mb=N     RLIMIT_AS for the child in MiB (0 = inherit)\n"
        "  --retry-max=N        transient-failure retries (default 2)\n"
        "  --retry-backoff-ms=N initial retry backoff (doubles per attempt)\n"
        "  --chaos-seed=N       fault-injection seed\n"
        "  --chaos-drop-rate=R  P(drop an outgoing message), 0..1\n"
        "  --chaos-crash-rank=N --chaos-crash-at=M\n"
        "                       crash rank N at its M-th MPI call\n"
        "  --trace              record spans; export Chrome trace JSON\n"
        "                       (<log-dir>/trace.json, one track per rank)\n"
        "  --metrics            export Prometheus text (<log-dir>/metrics.prom)\n"
        "  --trace-buffer-kb=N  trace ring size in KiB (default 256)\n"
        "  --journal            write journal.jsonl (one JSON event per\n"
        "                       iteration/solve/retry/kill) into the session\n"
        "  --status-file=PATH   atomically rewrite a one-object heartbeat\n"
        "                       JSON after every iteration\n"
        "  --stall-window=SECS  coverage-plateau window before the stall\n"
        "                       diagnosis engine classifies why the search\n"
        "                       stopped progressing (default 20)\n"
        "  --serve=PORT         embedded control-plane HTTP server on\n"
        "                       127.0.0.1:PORT (0 = ephemeral; the bound port\n"
        "                       lands in the status heartbeat).  Endpoints:\n"
        "                       /metrics /status /events /explain\n"
        "  --max-bugs=N         stop gracefully after N distinct bugs\n"
        "  --connect=HOST:PORT  run as a distributed campaign shard: pull\n"
        "                       iteration leases from a `compi coordinate`\n"
        "                       process, upload coverage/bug deltas, absorb\n"
        "                       the fleet's coverage; degrades to standalone\n"
        "                       (and keeps retrying) when the coordinator is\n"
        "                       unreachable\n"
        "  --shard-name=NAME    shard identity for the coordinator's logs\n"
        "  --shard-heartbeat-ms=N  lease keepalive cadence (default 1000)\n"
        "  --explain=DIR        print coverage timeline, near-miss, rank\n"
        "                       skew and solver reports for a logged\n"
        "                       session, then exit\n"
        "  --no-confirm-bugs    skip the flaky-bug confirmation replay\n"
        "  --no-reduction | --no-framework | --one-way   ablations\n"
        "  --random             random-testing baseline\n"
        "  --curve              print the coverage curve\n"
        "  --functions          per-function coverage breakdown\n"
        "  --list-targets | --help\n"
        "\n"
        "subcommands:\n"
        "  compi top <host:port|status-file> [--interval-ms=N] [--frames=N]\n"
        "            [--fleet]\n"
        "                       live terminal dashboard for a campaign that\n"
        "                       is serving (--serve) or writing --status-file;\n"
        "                       --fleet renders a coordinator's per-shard\n"
        "                       table (rates, leases, lag sparklines) from\n"
        "                       its /fleet endpoint\n"
        "  compi coordinate [--port=N] [--budget=N] [--lease-quota=N]\n"
        "                   [--lease-ttl-ms=N] [--target=...] [--cap=N]\n"
        "                   [--log-dir=PATH] [--resume=PATH] [--journal]\n"
        "                   [--serve=PORT] [--trace] [--trace-buffer-kb=N]\n"
        "                   [--stall-window=SECS]\n"
        "                       fault-tolerant distributed campaign\n"
        "                       coordinator: partitions the iteration budget\n"
        "                       across --connect'ed shards as time-bounded\n"
        "                       leases, merges their coverage/bug/ledger\n"
        "                       deltas, reclaims leases from dead shards,\n"
        "                       and checkpoints so kill -9 + --resume loses\n"
        "                       nothing\n"
        "  compi trace-merge [--coordinator=DIR] [--out=PATH] SHARD_DIR...\n"
        "                       stitch the coordinator's and each shard's\n"
        "                       trace.json into one clock-aligned Chrome\n"
        "                       trace (one process lane per shard; wall-\n"
        "                       clock drift corrected from the handshake\n"
        "                       stamps in the coordinator journal)\n";
  return os.str();
}

}  // namespace compi::cli
