// Command-line parsing for the `compi` tool binary.
//
// Kept separate from main() so the parsing logic is unit-testable.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "compi/options.h"

namespace compi::cli {

struct CliConfig {
  std::string target = "susy";  // susy | susy-fixed | hpl | imb
  int cap = 0;                  // 0 = target default N_C
  bool random_baseline = false; // run the random tester instead of COMPI
  std::string resume_dir;       // --resume: session directory to continue
  std::string explain_dir;      // --explain: report on this session and exit
  CampaignOptions campaign;
  bool list_targets = false;
  bool show_help = false;
  bool print_curve = false;     // per-iteration coverage curve on stdout
  bool print_functions = false; // per-function coverage breakdown
  // `compi top <host:port|status-file>`: live terminal dashboard against a
  // serving campaign (or a --status-file heartbeat).
  bool top = false;
  std::string top_target;
  int top_interval_ms = 1000;
  int top_frames = 0;           // 0 = refresh until the campaign ends
  bool top_fleet = false;       // --fleet: per-shard coordinator view
  // `compi coordinate`: distributed campaign coordinator.  Reuses
  // --target/--cap/--log-dir/--resume/--journal/--serve from the shared
  // flags; the fields below are its own.
  bool coordinate = false;
  int coord_port = 0;           // shard TCP port (0 = ephemeral loopback)
  std::int64_t coord_budget = 1000;
  int coord_lease_quota = 16;
  int coord_lease_ttl_ms = 10000;
  // `compi trace-merge`: stitch coordinator + shard Chrome traces into one
  // clock-aligned timeline.
  bool trace_merge = false;
  std::string trace_merge_coordinator;       // --coordinator=DIR (optional)
  std::vector<std::string> trace_merge_shards;  // positional shard dirs
  std::string trace_merge_out;               // --out=PATH (default stdout)
  // Campaign shard mode: --connect=HOST:PORT attaches the campaign to a
  // coordinator (degrades to standalone when it is unreachable).
  std::string connect;
  std::string shard_name = "shard";
  int shard_heartbeat_ms = 1000;
};

struct ParseResult {
  CliConfig config;
  std::optional<std::string> error;  // set when arguments were invalid
};

/// Parses argv.  Recognized flags:
///   --target=NAME        susy | susy-fixed | hpl | imb   (default susy)
///   --iterations=N       testing budget                  (default 500)
///   --time-budget=SECS   wall-clock budget (0 = off)
///   --strategy=NAME      bounded-dfs | dfs | random-branch |
///                        uniform-random | cfg
///   --cap=N              input cap N_C (target default when omitted)
///   --nprocs=N           initial process count           (default 8)
///   --focus=N            initial focus rank              (default 0)
///   --max-procs=N        cap on the process count        (default 16)
///   --dfs-phase=N        pure-DFS iterations before BoundedDFS
///   --depth-bound=N      explicit BoundedDFS bound (0 = derive)
///   --seed=N             RNG seed
///   --log-dir=PATH       write a file-based session
///   --resume=PATH        continue the checkpointed session in PATH
///   --checkpoint-interval=N  snapshot every N iterations (0 = off)
///   --workers=N          parallel campaign workers (default 1 = serial)
///   --solver-cache=N     solver memoization capacity in entries (0 = off)
///   --isolate            fork a sandbox child per test (contain real
///                        crashes and uninstrumented hangs)
///   --hang-timeout-ms=N  sandbox wall-clock kill timeout (0 = derive)
///   --child-mem-mb=N     sandbox child RLIMIT_AS in MiB (0 = inherit)
///   --retry-max=N        transient-failure retries (default 2)
///   --retry-backoff-ms=N initial retry backoff in milliseconds
///   --chaos-seed=N       fault-injection seed
///   --chaos-drop-rate=R  P(drop an outgoing message), 0..1
///   --chaos-crash-rank=N crash this rank ...
///   --chaos-crash-at=N   ... at its N-th MPI call (1-based)
///   --trace              record spans, export Chrome trace JSON
///   --metrics            export the metrics registry (Prometheus text)
///   --trace-buffer-kb=N  trace ring capacity in KiB (default 256)
///   --journal            write journal.jsonl event log into the session
///   --status-file=PATH   atomically rewrite a heartbeat JSON each iteration
///   --serve=PORT         embedded HTTP control plane on 127.0.0.1:PORT
///                        (0 = ephemeral): /metrics /status /events /explain
///   --max-bugs=N         stop gracefully after N distinct bugs (0 = off)
///   --explain=DIR        print the introspection report for a logged
///                        session directory and exit (no campaign)
///   --no-confirm-bugs    skip the flaky-bug confirmation replay
///   --no-reduction       disable constraint-set reduction (§IV-C)
///   --no-framework       No_Fwk ablation (§VI-E)
///   --one-way            one-way instrumentation ablation (§IV-B)
///   --random             random-testing baseline instead of COMPI
///   --curve              print the per-iteration coverage curve
///   --functions          print the per-function coverage breakdown
///   --list-targets, --help
///
/// Campaign shard mode:
///   --connect=HOST:PORT  pull iteration leases from a `compi coordinate`
///                        process instead of running the whole local
///                        budget; degrades to standalone when the
///                        coordinator is unreachable
///   --shard-name=NAME    human-readable shard identity (default "shard")
///   --shard-heartbeat-ms=N  lease-keepalive cadence (default 1000)
///
/// Campaign/coordinator shared: `--stall-window=SECS` sets the coverage
/// plateau the stall-diagnosis engine requires before it classifies a
/// stall (default 20).
///
/// Subcommand: `top <host:port|status-file> [--interval-ms=N] [--frames=N]
/// [--fleet]` fills the `top*` fields instead of running a campaign;
/// --fleet renders the coordinator's per-shard table from GET /fleet.
///
/// Subcommand: `coordinate [--port=N] [--budget=N] [--lease-quota=N]
/// [--lease-ttl-ms=N] [--target=...] [--cap=N] [--log-dir=PATH]
/// [--resume=PATH] [--journal] [--serve=PORT] [--trace]
/// [--trace-buffer-kb=N] [--stall-window=SECS]` fills the `coord*` fields
/// and runs the distributed campaign coordinator.
///
/// Subcommand: `trace-merge [--coordinator=DIR] [--out=PATH] SHARD_DIR...`
/// merges coordinator + shard trace.json files into one Chrome trace.
[[nodiscard]] ParseResult parse_cli(const std::vector<std::string>& args);

[[nodiscard]] std::string usage();

}  // namespace compi::cli
