// The `compi` tool binary: run a testing campaign from the command line.
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>

#include "cli/cli_options.h"
#include "compi/coordinator.h"
#include "compi/driver.h"
#include "compi/explain.h"
#include "compi/random_tester.h"
#include "compi/report.h"
#include "compi/shard_link.h"
#include "obs/journal.h"
#include "obs/trace_merge.h"
#include "serve/dashboard.h"
#include "targets/targets.h"

namespace {

using namespace compi;

TargetInfo build_target(const cli::CliConfig& cfg) {
  const int cap = cfg.cap;
  if (cfg.target == "susy") {
    return targets::make_mini_susy_target(cap > 0 ? cap : 5);
  }
  if (cfg.target == "susy-fixed") {
    return targets::make_mini_susy_target(cap > 0 ? cap : 5, false);
  }
  if (cfg.target == "hpl") {
    return targets::make_mini_hpl_target(cap > 0 ? cap : 300);
  }
  return targets::make_mini_imb_target(cap > 0 ? cap : 100);
}

void print_report(const TargetInfo& target, const CampaignResult& result,
                  bool curve, bool functions) {
  std::cout << "target            : " << target.name << "\n"
            << "iterations        : " << result.iterations.size() << "\n"
            << "covered branches  : " << result.covered_branches << " / "
            << result.reachable_branches << " reachable ("
            << TablePrinter::pct(result.coverage_rate) << ")\n"
            << "max constraint set: " << result.max_constraint_set << "\n"
            << "restarts          : " << result.restarts << "\n"
            << "total time        : "
            << TablePrinter::num(result.total_seconds, 2) << "s ("
            << TablePrinter::num(result.total_exec_seconds, 2) << "s exec, "
            << TablePrinter::num(result.total_solve_seconds, 2)
            << "s solve)\n";
  print_sandbox_summary(std::cout, result);
  print_matchings_summary(std::cout, result);
  if (result.stall_kind != "progressing" && !result.stall_kind.empty()) {
    std::cout << "\nWhy progress stopped: " << result.stall_kind << "\n  "
              << result.stall_detail << "\n  (no new coverage for the last "
              << TablePrinter::num(result.stalled_seconds, 1)
              << "s of the campaign)\n";
  }
  std::cout << "\nPhase profile (per-iteration percentiles in us):\n";
  print_phase_breakdown(std::cout, compute_phase_breakdown(result));
  if (result.bugs.empty()) {
    std::cout << "bugs              : none\n";
  } else {
    std::cout << "bugs              : " << result.bugs.size() << "\n";
    for (const BugRecord& bug : result.bugs) {
      std::cout << "  [" << rt::to_string(bug.outcome) << "] " << bug.message
                << "\n    nprocs=" << bug.nprocs << " focus=" << bug.focus
                << " first=" << bug.first_iteration << " inputs:";
      for (const auto& [name, value] : bug.named_inputs) {
        std::cout << ' ' << name << '=' << value;
      }
      std::cout << "\n";
      if (!bug.decisions.empty()) {
        std::cout << "    decisions:";
        for (const minimpi::MatchDecision& d : bug.decisions) {
          std::cout << ' ' << d.rank << '/' << d.seq << "->" << d.src;
        }
        std::cout << "\n";
      }
    }
  }
  if (functions) {
    TablePrinter table({"Function", "Covered", "Total", "Reachable?"});
    for (const FunctionCoverage& fc : result.function_coverage) {
      table.add_row({fc.function, std::to_string(fc.covered_branches),
                     std::to_string(fc.total_branches),
                     fc.encountered ? "yes" : "no"});
    }
    std::cout << "\n";
    table.print(std::cout);
  }
  if (curve) {
    std::cout << "\niteration,covered\n";
    for (const IterationRecord& rec : result.iterations) {
      std::cout << rec.iteration << ',' << rec.covered_branches << "\n";
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  const cli::ParseResult parsed = cli::parse_cli(args);
  if (parsed.error) {
    std::cerr << "error: " << *parsed.error << "\n\n" << cli::usage();
    return 2;
  }
  const cli::CliConfig& cfg = parsed.config;
  if (cfg.show_help) {
    std::cout << cli::usage();
    return 0;
  }
  if (cfg.top) {
    serve::TopOptions opts;
    opts.target = cfg.top_target;
    opts.interval_ms = cfg.top_interval_ms;
    opts.frames = cfg.top_frames;
    opts.fleet = cfg.top_fleet;
    return serve::run_top(opts, std::cout);
  }
  if (cfg.trace_merge) {
    obs::TraceMergeOptions opts;
    opts.coordinator_dir = cfg.trace_merge_coordinator;
    opts.shard_dirs = cfg.trace_merge_shards;
    std::string error;
    if (cfg.trace_merge_out.empty()) {
      if (!obs::merge_traces(opts, std::cout, &error)) {
        std::cerr << "compi trace-merge: " << error << "\n";
        return 1;
      }
      return 0;
    }
    std::ofstream out(cfg.trace_merge_out, std::ios::binary);
    if (!out) {
      std::cerr << "compi trace-merge: cannot write " << cfg.trace_merge_out
                << "\n";
      return 1;
    }
    if (!obs::merge_traces(opts, out, &error)) {
      std::cerr << "compi trace-merge: " << error << "\n";
      return 1;
    }
    std::cout << "merged trace      : " << cfg.trace_merge_out << "\n";
    return 0;
  }
  if (cfg.coordinate) {
    const TargetInfo target = build_target(cfg);
    CoordinatorOptions co;
    co.port = cfg.coord_port;
    co.budget = cfg.coord_budget;
    co.lease_quota = cfg.coord_lease_quota;
    co.lease_ttl_ms = cfg.coord_lease_ttl_ms;
    co.log_dir = cfg.campaign.log_dir;
    co.resume = cfg.campaign.resume;
    co.journal = cfg.campaign.journal;
    co.serve_port = cfg.campaign.serve_port;
    co.trace = cfg.campaign.trace;
    co.trace_buffer_kb = cfg.campaign.trace_buffer_kb;
    co.stall_window_seconds = cfg.campaign.stall_window_seconds;
    Coordinator coord(target, co);
    if (!coord.start()) {
      std::cerr << "error: coordinator could not bind 127.0.0.1:"
                << cfg.coord_port << "\n";
      return 1;
    }
    std::cout << "coordinating " << target.name << " on 127.0.0.1:"
              << coord.port() << " (budget " << coord.budget()
              << " iterations)\n"
              << "start shards with: compi --target=" << cfg.target
              << " --connect=127.0.0.1:" << coord.port() << "\n";
    if (coord.http_port() >= 0) {
      std::cout << "serving merged state on 127.0.0.1:" << coord.http_port()
                << " (/metrics /status /events /healthz)\n";
    }
    // Scripts discover the ephemeral port from this banner: flush it even
    // when stdout is a redirected (block-buffered) file.
    std::cout.flush();
    coord.wait_until_done();
    coord.stop();
    std::cout << "completed         : " << coord.completed() << " / "
              << coord.budget() << " iterations\n"
              << "covered branches  : " << coord.covered_ids().size() << "\n"
              << "bugs              : " << coord.bugs().size() << "\n"
              << "shards joined     : " << coord.shards_joined()
              << " (lost " << coord.shards_lost() << ", leases reclaimed "
              << coord.leases_reclaimed() << ")\n";
    const auto [stall_kind, stall_detail] = coord.diagnosis();
    if (stall_kind != "progressing" && !stall_kind.empty()) {
      std::cout << "why stopped       : " << stall_kind << " ("
                << stall_detail << ")\n";
    }
    for (const BugRecord& bug : coord.bugs()) {
      std::cout << "  [" << rt::to_string(bug.outcome) << "] " << bug.message
                << "\n";
    }
    return 0;
  }
  if (!cfg.explain_dir.empty()) {
    return explain_session(cfg.explain_dir, std::cout) ? 0 : 1;
  }
  if (cfg.list_targets) {
    std::cout << "susy        mini-SUSY-HMC (4 seeded bugs, N_C default 5)\n"
              << "susy-fixed  mini-SUSY-HMC with the bugs fixed\n"
              << "hpl         mini-HPL (N_C default 300)\n"
              << "imb         mini-IMB-MPI1 (N_C default 100)\n";
    return 0;
  }

  const TargetInfo target = build_target(cfg);
  CampaignOptions campaign = cfg.campaign;
  std::optional<ShardLink> link;
  if (!cfg.connect.empty() && !cfg.random_baseline) {
    ShardLinkOptions so;
    so.connect = cfg.connect;
    so.name = cfg.shard_name;
    so.seed = cfg.campaign.seed;
    so.heartbeat_ms = cfg.shard_heartbeat_ms;
    link.emplace(std::move(so));
    if (link->start()) {
      std::cout << "shard " << link->key() << " joined coordinator at "
                << cfg.connect << std::endl;
    } else {
      std::cerr << "compi: coordinator at " << cfg.connect
                << " unreachable; running standalone and retrying\n";
    }
    campaign.work_source = &*link;
    // Identity sidecar for `compi trace-merge`: maps this session dir to
    // the shard key the coordinator journals (and labels the merged lane).
    if (!campaign.log_dir.empty()) {
      std::error_code ec;
      std::filesystem::create_directories(campaign.log_dir, ec);
      std::ofstream sidecar(
          std::filesystem::path(campaign.log_dir) / "shard.json");
      if (sidecar) {
        std::string doc;
        obs::JsonWriter w(doc);
        w.field("key", link->key());
        w.field("name", cfg.shard_name);
        w.finish();
        sidecar << doc;
      }
    }
  }
  const CampaignResult result =
      cfg.random_baseline ? RandomTester(target, cfg.campaign).run()
                          : Campaign(target, campaign).run();
  if (link) link->finish();
  print_report(target, result, cfg.print_curve, cfg.print_functions);
  if (!cfg.random_baseline) {
    const std::string base =
        cfg.campaign.log_dir.empty() ? "." : cfg.campaign.log_dir;
    if (cfg.campaign.metrics) {
      std::cout << "metrics           : " << base << "/metrics.prom\n";
    }
    if (cfg.campaign.trace) {
      std::cout << "trace             : " << base << "/trace.json\n";
    }
  }
  return 0;
}
