# Empty compiler generated dependencies file for compi_runtime.
# This may be replaced when dependencies are built.
