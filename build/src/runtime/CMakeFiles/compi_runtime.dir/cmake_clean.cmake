file(REMOVE_RECURSE
  "CMakeFiles/compi_runtime.dir/branch_table.cc.o"
  "CMakeFiles/compi_runtime.dir/branch_table.cc.o.d"
  "CMakeFiles/compi_runtime.dir/checked_alloc.cc.o"
  "CMakeFiles/compi_runtime.dir/checked_alloc.cc.o.d"
  "CMakeFiles/compi_runtime.dir/context.cc.o"
  "CMakeFiles/compi_runtime.dir/context.cc.o.d"
  "CMakeFiles/compi_runtime.dir/faults.cc.o"
  "CMakeFiles/compi_runtime.dir/faults.cc.o.d"
  "CMakeFiles/compi_runtime.dir/test_log.cc.o"
  "CMakeFiles/compi_runtime.dir/test_log.cc.o.d"
  "CMakeFiles/compi_runtime.dir/var_registry.cc.o"
  "CMakeFiles/compi_runtime.dir/var_registry.cc.o.d"
  "libcompi_runtime.a"
  "libcompi_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compi_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
