file(REMOVE_RECURSE
  "libcompi_runtime.a"
)
