
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/branch_table.cc" "src/runtime/CMakeFiles/compi_runtime.dir/branch_table.cc.o" "gcc" "src/runtime/CMakeFiles/compi_runtime.dir/branch_table.cc.o.d"
  "/root/repo/src/runtime/checked_alloc.cc" "src/runtime/CMakeFiles/compi_runtime.dir/checked_alloc.cc.o" "gcc" "src/runtime/CMakeFiles/compi_runtime.dir/checked_alloc.cc.o.d"
  "/root/repo/src/runtime/context.cc" "src/runtime/CMakeFiles/compi_runtime.dir/context.cc.o" "gcc" "src/runtime/CMakeFiles/compi_runtime.dir/context.cc.o.d"
  "/root/repo/src/runtime/faults.cc" "src/runtime/CMakeFiles/compi_runtime.dir/faults.cc.o" "gcc" "src/runtime/CMakeFiles/compi_runtime.dir/faults.cc.o.d"
  "/root/repo/src/runtime/test_log.cc" "src/runtime/CMakeFiles/compi_runtime.dir/test_log.cc.o" "gcc" "src/runtime/CMakeFiles/compi_runtime.dir/test_log.cc.o.d"
  "/root/repo/src/runtime/var_registry.cc" "src/runtime/CMakeFiles/compi_runtime.dir/var_registry.cc.o" "gcc" "src/runtime/CMakeFiles/compi_runtime.dir/var_registry.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/symbolic/CMakeFiles/compi_symbolic.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/compi_solver.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
