# CMake generated Testfile for 
# Source directory: /root/repo/src/cli
# Build directory: /root/repo/build/src/cli
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_smoke_susy "/root/repo/build/src/cli/compi" "--target=susy" "--iterations=60" "--seed=3")
set_tests_properties(cli_smoke_susy PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/src/cli/CMakeLists.txt;11;add_test;/root/repo/src/cli/CMakeLists.txt;0;")
add_test(cli_smoke_hpl "/root/repo/build/src/cli/compi" "--target=hpl" "--cap=48" "--iterations=80" "--functions")
set_tests_properties(cli_smoke_hpl PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/src/cli/CMakeLists.txt;12;add_test;/root/repo/src/cli/CMakeLists.txt;0;")
add_test(cli_smoke_random "/root/repo/build/src/cli/compi" "--target=imb" "--random" "--iterations=30")
set_tests_properties(cli_smoke_random PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/src/cli/CMakeLists.txt;13;add_test;/root/repo/src/cli/CMakeLists.txt;0;")
add_test(cli_smoke_help "/root/repo/build/src/cli/compi" "--help")
set_tests_properties(cli_smoke_help PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/src/cli/CMakeLists.txt;14;add_test;/root/repo/src/cli/CMakeLists.txt;0;")
add_test(cli_smoke_list "/root/repo/build/src/cli/compi" "--list-targets")
set_tests_properties(cli_smoke_list PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/src/cli/CMakeLists.txt;15;add_test;/root/repo/src/cli/CMakeLists.txt;0;")
add_test(cli_rejects_bad_flag "/root/repo/build/src/cli/compi" "--definitely-not-a-flag")
set_tests_properties(cli_rejects_bad_flag PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/src/cli/CMakeLists.txt;16;add_test;/root/repo/src/cli/CMakeLists.txt;0;")
