# Empty dependencies file for compi_cli_lib.
# This may be replaced when dependencies are built.
