file(REMOVE_RECURSE
  "CMakeFiles/compi_cli_lib.dir/cli_options.cc.o"
  "CMakeFiles/compi_cli_lib.dir/cli_options.cc.o.d"
  "libcompi_cli_lib.a"
  "libcompi_cli_lib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compi_cli_lib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
