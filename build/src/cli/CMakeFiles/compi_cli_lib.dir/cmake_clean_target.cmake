file(REMOVE_RECURSE
  "libcompi_cli_lib.a"
)
