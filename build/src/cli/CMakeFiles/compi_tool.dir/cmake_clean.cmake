file(REMOVE_RECURSE
  "CMakeFiles/compi_tool.dir/compi_main.cc.o"
  "CMakeFiles/compi_tool.dir/compi_main.cc.o.d"
  "compi"
  "compi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compi_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
