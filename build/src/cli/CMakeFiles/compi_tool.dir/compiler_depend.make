# Empty compiler generated dependencies file for compi_tool.
# This may be replaced when dependencies are built.
