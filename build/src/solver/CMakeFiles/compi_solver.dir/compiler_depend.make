# Empty compiler generated dependencies file for compi_solver.
# This may be replaced when dependencies are built.
