
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/solver/linear_expr.cc" "src/solver/CMakeFiles/compi_solver.dir/linear_expr.cc.o" "gcc" "src/solver/CMakeFiles/compi_solver.dir/linear_expr.cc.o.d"
  "/root/repo/src/solver/predicate.cc" "src/solver/CMakeFiles/compi_solver.dir/predicate.cc.o" "gcc" "src/solver/CMakeFiles/compi_solver.dir/predicate.cc.o.d"
  "/root/repo/src/solver/propagation.cc" "src/solver/CMakeFiles/compi_solver.dir/propagation.cc.o" "gcc" "src/solver/CMakeFiles/compi_solver.dir/propagation.cc.o.d"
  "/root/repo/src/solver/solver.cc" "src/solver/CMakeFiles/compi_solver.dir/solver.cc.o" "gcc" "src/solver/CMakeFiles/compi_solver.dir/solver.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
