file(REMOVE_RECURSE
  "CMakeFiles/compi_solver.dir/linear_expr.cc.o"
  "CMakeFiles/compi_solver.dir/linear_expr.cc.o.d"
  "CMakeFiles/compi_solver.dir/predicate.cc.o"
  "CMakeFiles/compi_solver.dir/predicate.cc.o.d"
  "CMakeFiles/compi_solver.dir/propagation.cc.o"
  "CMakeFiles/compi_solver.dir/propagation.cc.o.d"
  "CMakeFiles/compi_solver.dir/solver.cc.o"
  "CMakeFiles/compi_solver.dir/solver.cc.o.d"
  "libcompi_solver.a"
  "libcompi_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compi_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
