file(REMOVE_RECURSE
  "libcompi_solver.a"
)
