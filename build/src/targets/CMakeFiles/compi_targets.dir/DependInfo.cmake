
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/targets/mini_hpl/hpl_compute.cc" "src/targets/CMakeFiles/compi_targets.dir/mini_hpl/hpl_compute.cc.o" "gcc" "src/targets/CMakeFiles/compi_targets.dir/mini_hpl/hpl_compute.cc.o.d"
  "/root/repo/src/targets/mini_hpl/hpl_params.cc" "src/targets/CMakeFiles/compi_targets.dir/mini_hpl/hpl_params.cc.o" "gcc" "src/targets/CMakeFiles/compi_targets.dir/mini_hpl/hpl_params.cc.o.d"
  "/root/repo/src/targets/mini_hpl/mini_hpl.cc" "src/targets/CMakeFiles/compi_targets.dir/mini_hpl/mini_hpl.cc.o" "gcc" "src/targets/CMakeFiles/compi_targets.dir/mini_hpl/mini_hpl.cc.o.d"
  "/root/repo/src/targets/mini_imb/imb_stats.cc" "src/targets/CMakeFiles/compi_targets.dir/mini_imb/imb_stats.cc.o" "gcc" "src/targets/CMakeFiles/compi_targets.dir/mini_imb/imb_stats.cc.o.d"
  "/root/repo/src/targets/mini_imb/mini_imb.cc" "src/targets/CMakeFiles/compi_targets.dir/mini_imb/mini_imb.cc.o" "gcc" "src/targets/CMakeFiles/compi_targets.dir/mini_imb/mini_imb.cc.o.d"
  "/root/repo/src/targets/mini_susy/mini_susy.cc" "src/targets/CMakeFiles/compi_targets.dir/mini_susy/mini_susy.cc.o" "gcc" "src/targets/CMakeFiles/compi_targets.dir/mini_susy/mini_susy.cc.o.d"
  "/root/repo/src/targets/mini_susy/susy_lattice.cc" "src/targets/CMakeFiles/compi_targets.dir/mini_susy/susy_lattice.cc.o" "gcc" "src/targets/CMakeFiles/compi_targets.dir/mini_susy/susy_lattice.cc.o.d"
  "/root/repo/src/targets/mini_susy/susy_rhmc.cc" "src/targets/CMakeFiles/compi_targets.dir/mini_susy/susy_rhmc.cc.o" "gcc" "src/targets/CMakeFiles/compi_targets.dir/mini_susy/susy_rhmc.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/compi/CMakeFiles/compi_core.dir/DependInfo.cmake"
  "/root/repo/build/src/minimpi/CMakeFiles/compi_minimpi.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/compi_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/symbolic/CMakeFiles/compi_symbolic.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/compi_solver.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
