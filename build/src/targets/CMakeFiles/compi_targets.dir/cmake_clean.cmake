file(REMOVE_RECURSE
  "CMakeFiles/compi_targets.dir/mini_hpl/hpl_compute.cc.o"
  "CMakeFiles/compi_targets.dir/mini_hpl/hpl_compute.cc.o.d"
  "CMakeFiles/compi_targets.dir/mini_hpl/hpl_params.cc.o"
  "CMakeFiles/compi_targets.dir/mini_hpl/hpl_params.cc.o.d"
  "CMakeFiles/compi_targets.dir/mini_hpl/mini_hpl.cc.o"
  "CMakeFiles/compi_targets.dir/mini_hpl/mini_hpl.cc.o.d"
  "CMakeFiles/compi_targets.dir/mini_imb/imb_stats.cc.o"
  "CMakeFiles/compi_targets.dir/mini_imb/imb_stats.cc.o.d"
  "CMakeFiles/compi_targets.dir/mini_imb/mini_imb.cc.o"
  "CMakeFiles/compi_targets.dir/mini_imb/mini_imb.cc.o.d"
  "CMakeFiles/compi_targets.dir/mini_susy/mini_susy.cc.o"
  "CMakeFiles/compi_targets.dir/mini_susy/mini_susy.cc.o.d"
  "CMakeFiles/compi_targets.dir/mini_susy/susy_lattice.cc.o"
  "CMakeFiles/compi_targets.dir/mini_susy/susy_lattice.cc.o.d"
  "CMakeFiles/compi_targets.dir/mini_susy/susy_rhmc.cc.o"
  "CMakeFiles/compi_targets.dir/mini_susy/susy_rhmc.cc.o.d"
  "libcompi_targets.a"
  "libcompi_targets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compi_targets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
