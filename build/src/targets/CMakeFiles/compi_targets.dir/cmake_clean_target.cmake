file(REMOVE_RECURSE
  "libcompi_targets.a"
)
