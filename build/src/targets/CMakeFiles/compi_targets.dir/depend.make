# Empty dependencies file for compi_targets.
# This may be replaced when dependencies are built.
