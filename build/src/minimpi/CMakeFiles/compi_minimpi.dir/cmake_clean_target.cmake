file(REMOVE_RECURSE
  "libcompi_minimpi.a"
)
