file(REMOVE_RECURSE
  "CMakeFiles/compi_minimpi.dir/collective_slot.cc.o"
  "CMakeFiles/compi_minimpi.dir/collective_slot.cc.o.d"
  "CMakeFiles/compi_minimpi.dir/comm.cc.o"
  "CMakeFiles/compi_minimpi.dir/comm.cc.o.d"
  "CMakeFiles/compi_minimpi.dir/launcher.cc.o"
  "CMakeFiles/compi_minimpi.dir/launcher.cc.o.d"
  "CMakeFiles/compi_minimpi.dir/world.cc.o"
  "CMakeFiles/compi_minimpi.dir/world.cc.o.d"
  "libcompi_minimpi.a"
  "libcompi_minimpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compi_minimpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
