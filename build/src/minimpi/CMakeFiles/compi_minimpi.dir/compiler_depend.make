# Empty compiler generated dependencies file for compi_minimpi.
# This may be replaced when dependencies are built.
