
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/minimpi/collective_slot.cc" "src/minimpi/CMakeFiles/compi_minimpi.dir/collective_slot.cc.o" "gcc" "src/minimpi/CMakeFiles/compi_minimpi.dir/collective_slot.cc.o.d"
  "/root/repo/src/minimpi/comm.cc" "src/minimpi/CMakeFiles/compi_minimpi.dir/comm.cc.o" "gcc" "src/minimpi/CMakeFiles/compi_minimpi.dir/comm.cc.o.d"
  "/root/repo/src/minimpi/launcher.cc" "src/minimpi/CMakeFiles/compi_minimpi.dir/launcher.cc.o" "gcc" "src/minimpi/CMakeFiles/compi_minimpi.dir/launcher.cc.o.d"
  "/root/repo/src/minimpi/world.cc" "src/minimpi/CMakeFiles/compi_minimpi.dir/world.cc.o" "gcc" "src/minimpi/CMakeFiles/compi_minimpi.dir/world.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/compi_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/symbolic/CMakeFiles/compi_symbolic.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/compi_solver.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
