file(REMOVE_RECURSE
  "libcompi_core.a"
)
