# Empty compiler generated dependencies file for compi_core.
# This may be replaced when dependencies are built.
