file(REMOVE_RECURSE
  "CMakeFiles/compi_core.dir/coverage.cc.o"
  "CMakeFiles/compi_core.dir/coverage.cc.o.d"
  "CMakeFiles/compi_core.dir/driver.cc.o"
  "CMakeFiles/compi_core.dir/driver.cc.o.d"
  "CMakeFiles/compi_core.dir/fixed_run.cc.o"
  "CMakeFiles/compi_core.dir/fixed_run.cc.o.d"
  "CMakeFiles/compi_core.dir/framework.cc.o"
  "CMakeFiles/compi_core.dir/framework.cc.o.d"
  "CMakeFiles/compi_core.dir/options.cc.o"
  "CMakeFiles/compi_core.dir/options.cc.o.d"
  "CMakeFiles/compi_core.dir/random_tester.cc.o"
  "CMakeFiles/compi_core.dir/random_tester.cc.o.d"
  "CMakeFiles/compi_core.dir/report.cc.o"
  "CMakeFiles/compi_core.dir/report.cc.o.d"
  "CMakeFiles/compi_core.dir/search_strategy.cc.o"
  "CMakeFiles/compi_core.dir/search_strategy.cc.o.d"
  "CMakeFiles/compi_core.dir/session.cc.o"
  "CMakeFiles/compi_core.dir/session.cc.o.d"
  "libcompi_core.a"
  "libcompi_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compi_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
