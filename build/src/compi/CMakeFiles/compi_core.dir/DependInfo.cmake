
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compi/coverage.cc" "src/compi/CMakeFiles/compi_core.dir/coverage.cc.o" "gcc" "src/compi/CMakeFiles/compi_core.dir/coverage.cc.o.d"
  "/root/repo/src/compi/driver.cc" "src/compi/CMakeFiles/compi_core.dir/driver.cc.o" "gcc" "src/compi/CMakeFiles/compi_core.dir/driver.cc.o.d"
  "/root/repo/src/compi/fixed_run.cc" "src/compi/CMakeFiles/compi_core.dir/fixed_run.cc.o" "gcc" "src/compi/CMakeFiles/compi_core.dir/fixed_run.cc.o.d"
  "/root/repo/src/compi/framework.cc" "src/compi/CMakeFiles/compi_core.dir/framework.cc.o" "gcc" "src/compi/CMakeFiles/compi_core.dir/framework.cc.o.d"
  "/root/repo/src/compi/options.cc" "src/compi/CMakeFiles/compi_core.dir/options.cc.o" "gcc" "src/compi/CMakeFiles/compi_core.dir/options.cc.o.d"
  "/root/repo/src/compi/random_tester.cc" "src/compi/CMakeFiles/compi_core.dir/random_tester.cc.o" "gcc" "src/compi/CMakeFiles/compi_core.dir/random_tester.cc.o.d"
  "/root/repo/src/compi/report.cc" "src/compi/CMakeFiles/compi_core.dir/report.cc.o" "gcc" "src/compi/CMakeFiles/compi_core.dir/report.cc.o.d"
  "/root/repo/src/compi/search_strategy.cc" "src/compi/CMakeFiles/compi_core.dir/search_strategy.cc.o" "gcc" "src/compi/CMakeFiles/compi_core.dir/search_strategy.cc.o.d"
  "/root/repo/src/compi/session.cc" "src/compi/CMakeFiles/compi_core.dir/session.cc.o" "gcc" "src/compi/CMakeFiles/compi_core.dir/session.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/minimpi/CMakeFiles/compi_minimpi.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/compi_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/compi_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/symbolic/CMakeFiles/compi_symbolic.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
