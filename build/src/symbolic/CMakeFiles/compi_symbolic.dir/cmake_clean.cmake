file(REMOVE_RECURSE
  "CMakeFiles/compi_symbolic.dir/path.cc.o"
  "CMakeFiles/compi_symbolic.dir/path.cc.o.d"
  "CMakeFiles/compi_symbolic.dir/sym_value.cc.o"
  "CMakeFiles/compi_symbolic.dir/sym_value.cc.o.d"
  "libcompi_symbolic.a"
  "libcompi_symbolic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compi_symbolic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
