
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/symbolic/path.cc" "src/symbolic/CMakeFiles/compi_symbolic.dir/path.cc.o" "gcc" "src/symbolic/CMakeFiles/compi_symbolic.dir/path.cc.o.d"
  "/root/repo/src/symbolic/sym_value.cc" "src/symbolic/CMakeFiles/compi_symbolic.dir/sym_value.cc.o" "gcc" "src/symbolic/CMakeFiles/compi_symbolic.dir/sym_value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/solver/CMakeFiles/compi_solver.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
