file(REMOVE_RECURSE
  "libcompi_symbolic.a"
)
