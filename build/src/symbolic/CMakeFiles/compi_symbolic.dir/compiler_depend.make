# Empty compiler generated dependencies file for compi_symbolic.
# This may be replaced when dependencies are built.
