file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_reduction.dir/bench_table5_reduction.cc.o"
  "CMakeFiles/bench_table5_reduction.dir/bench_table5_reduction.cc.o.d"
  "bench_table5_reduction"
  "bench_table5_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
