file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_complexity.dir/bench_table3_complexity.cc.o"
  "CMakeFiles/bench_table3_complexity.dir/bench_table3_complexity.cc.o.d"
  "bench_table3_complexity"
  "bench_table3_complexity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_complexity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
