# Empty dependencies file for bench_table3_complexity.
# This may be replaced when dependencies are built.
