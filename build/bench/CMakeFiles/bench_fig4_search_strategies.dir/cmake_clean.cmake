file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_search_strategies.dir/bench_fig4_search_strategies.cc.o"
  "CMakeFiles/bench_fig4_search_strategies.dir/bench_fig4_search_strategies.cc.o.d"
  "bench_fig4_search_strategies"
  "bench_fig4_search_strategies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_search_strategies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
