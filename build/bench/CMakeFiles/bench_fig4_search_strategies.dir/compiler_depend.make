# Empty compiler generated dependencies file for bench_fig4_search_strategies.
# This may be replaced when dependencies are built.
