# Empty compiler generated dependencies file for bench_bugs.
# This may be replaced when dependencies are built.
