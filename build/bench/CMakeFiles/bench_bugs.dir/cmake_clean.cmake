file(REMOVE_RECURSE
  "CMakeFiles/bench_bugs.dir/bench_bugs.cc.o"
  "CMakeFiles/bench_bugs.dir/bench_bugs.cc.o.d"
  "bench_bugs"
  "bench_bugs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bugs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
