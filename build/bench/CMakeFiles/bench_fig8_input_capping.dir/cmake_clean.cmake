file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_input_capping.dir/bench_fig8_input_capping.cc.o"
  "CMakeFiles/bench_fig8_input_capping.dir/bench_fig8_input_capping.cc.o.d"
  "bench_fig8_input_capping"
  "bench_fig8_input_capping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_input_capping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
