
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig8_input_capping.cc" "bench/CMakeFiles/bench_fig8_input_capping.dir/bench_fig8_input_capping.cc.o" "gcc" "bench/CMakeFiles/bench_fig8_input_capping.dir/bench_fig8_input_capping.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/targets/CMakeFiles/compi_targets.dir/DependInfo.cmake"
  "/root/repo/build/src/compi/CMakeFiles/compi_core.dir/DependInfo.cmake"
  "/root/repo/build/src/minimpi/CMakeFiles/compi_minimpi.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/compi_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/symbolic/CMakeFiles/compi_symbolic.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/compi_solver.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
