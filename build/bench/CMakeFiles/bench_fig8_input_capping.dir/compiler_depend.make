# Empty compiler generated dependencies file for bench_fig8_input_capping.
# This may be replaced when dependencies are built.
