file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_two_way.dir/bench_table4_two_way.cc.o"
  "CMakeFiles/bench_table4_two_way.dir/bench_table4_two_way.cc.o.d"
  "bench_table4_two_way"
  "bench_table4_two_way.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_two_way.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
