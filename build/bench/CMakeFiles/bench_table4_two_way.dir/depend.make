# Empty dependencies file for bench_table4_two_way.
# This may be replaced when dependencies are built.
