file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_matrix_size.dir/bench_fig6_matrix_size.cc.o"
  "CMakeFiles/bench_fig6_matrix_size.dir/bench_fig6_matrix_size.cc.o.d"
  "bench_fig6_matrix_size"
  "bench_fig6_matrix_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_matrix_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
