# Empty dependencies file for bench_fig6_matrix_size.
# This may be replaced when dependencies are built.
