file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_constraint_sizes.dir/bench_fig9_constraint_sizes.cc.o"
  "CMakeFiles/bench_fig9_constraint_sizes.dir/bench_fig9_constraint_sizes.cc.o.d"
  "bench_fig9_constraint_sizes"
  "bench_fig9_constraint_sizes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_constraint_sizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
