# Empty compiler generated dependencies file for bench_fig9_constraint_sizes.
# This may be replaced when dependencies are built.
