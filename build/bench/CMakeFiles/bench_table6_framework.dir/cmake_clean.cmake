file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_framework.dir/bench_table6_framework.cc.o"
  "CMakeFiles/bench_table6_framework.dir/bench_table6_framework.cc.o.d"
  "bench_table6_framework"
  "bench_table6_framework.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_framework.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
