# Empty dependencies file for compi_tests.
# This may be replaced when dependencies are built.
