
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cli/cli_options_test.cc" "tests/CMakeFiles/compi_tests.dir/cli/cli_options_test.cc.o" "gcc" "tests/CMakeFiles/compi_tests.dir/cli/cli_options_test.cc.o.d"
  "/root/repo/tests/compi/coverage_test.cc" "tests/CMakeFiles/compi_tests.dir/compi/coverage_test.cc.o" "gcc" "tests/CMakeFiles/compi_tests.dir/compi/coverage_test.cc.o.d"
  "/root/repo/tests/compi/driver_test.cc" "tests/CMakeFiles/compi_tests.dir/compi/driver_test.cc.o" "gcc" "tests/CMakeFiles/compi_tests.dir/compi/driver_test.cc.o.d"
  "/root/repo/tests/compi/framework_test.cc" "tests/CMakeFiles/compi_tests.dir/compi/framework_test.cc.o" "gcc" "tests/CMakeFiles/compi_tests.dir/compi/framework_test.cc.o.d"
  "/root/repo/tests/compi/random_tester_test.cc" "tests/CMakeFiles/compi_tests.dir/compi/random_tester_test.cc.o" "gcc" "tests/CMakeFiles/compi_tests.dir/compi/random_tester_test.cc.o.d"
  "/root/repo/tests/compi/report_test.cc" "tests/CMakeFiles/compi_tests.dir/compi/report_test.cc.o" "gcc" "tests/CMakeFiles/compi_tests.dir/compi/report_test.cc.o.d"
  "/root/repo/tests/compi/search_exhaustiveness_test.cc" "tests/CMakeFiles/compi_tests.dir/compi/search_exhaustiveness_test.cc.o" "gcc" "tests/CMakeFiles/compi_tests.dir/compi/search_exhaustiveness_test.cc.o.d"
  "/root/repo/tests/compi/search_strategy_test.cc" "tests/CMakeFiles/compi_tests.dir/compi/search_strategy_test.cc.o" "gcc" "tests/CMakeFiles/compi_tests.dir/compi/search_strategy_test.cc.o.d"
  "/root/repo/tests/compi/session_test.cc" "tests/CMakeFiles/compi_tests.dir/compi/session_test.cc.o" "gcc" "tests/CMakeFiles/compi_tests.dir/compi/session_test.cc.o.d"
  "/root/repo/tests/integration/campaign_integration_test.cc" "tests/CMakeFiles/compi_tests.dir/integration/campaign_integration_test.cc.o" "gcc" "tests/CMakeFiles/compi_tests.dir/integration/campaign_integration_test.cc.o.d"
  "/root/repo/tests/minimpi/collectives_extra_test.cc" "tests/CMakeFiles/compi_tests.dir/minimpi/collectives_extra_test.cc.o" "gcc" "tests/CMakeFiles/compi_tests.dir/minimpi/collectives_extra_test.cc.o.d"
  "/root/repo/tests/minimpi/launcher_mpmd_test.cc" "tests/CMakeFiles/compi_tests.dir/minimpi/launcher_mpmd_test.cc.o" "gcc" "tests/CMakeFiles/compi_tests.dir/minimpi/launcher_mpmd_test.cc.o.d"
  "/root/repo/tests/minimpi/minimpi_test.cc" "tests/CMakeFiles/compi_tests.dir/minimpi/minimpi_test.cc.o" "gcc" "tests/CMakeFiles/compi_tests.dir/minimpi/minimpi_test.cc.o.d"
  "/root/repo/tests/minimpi/world_test.cc" "tests/CMakeFiles/compi_tests.dir/minimpi/world_test.cc.o" "gcc" "tests/CMakeFiles/compi_tests.dir/minimpi/world_test.cc.o.d"
  "/root/repo/tests/runtime/branch_table_test.cc" "tests/CMakeFiles/compi_tests.dir/runtime/branch_table_test.cc.o" "gcc" "tests/CMakeFiles/compi_tests.dir/runtime/branch_table_test.cc.o.d"
  "/root/repo/tests/runtime/checked_alloc_test.cc" "tests/CMakeFiles/compi_tests.dir/runtime/checked_alloc_test.cc.o" "gcc" "tests/CMakeFiles/compi_tests.dir/runtime/checked_alloc_test.cc.o.d"
  "/root/repo/tests/runtime/context_test.cc" "tests/CMakeFiles/compi_tests.dir/runtime/context_test.cc.o" "gcc" "tests/CMakeFiles/compi_tests.dir/runtime/context_test.cc.o.d"
  "/root/repo/tests/runtime/reduction_property_test.cc" "tests/CMakeFiles/compi_tests.dir/runtime/reduction_property_test.cc.o" "gcc" "tests/CMakeFiles/compi_tests.dir/runtime/reduction_property_test.cc.o.d"
  "/root/repo/tests/runtime/test_log_test.cc" "tests/CMakeFiles/compi_tests.dir/runtime/test_log_test.cc.o" "gcc" "tests/CMakeFiles/compi_tests.dir/runtime/test_log_test.cc.o.d"
  "/root/repo/tests/runtime/var_registry_test.cc" "tests/CMakeFiles/compi_tests.dir/runtime/var_registry_test.cc.o" "gcc" "tests/CMakeFiles/compi_tests.dir/runtime/var_registry_test.cc.o.d"
  "/root/repo/tests/solver/interval_test.cc" "tests/CMakeFiles/compi_tests.dir/solver/interval_test.cc.o" "gcc" "tests/CMakeFiles/compi_tests.dir/solver/interval_test.cc.o.d"
  "/root/repo/tests/solver/linear_expr_test.cc" "tests/CMakeFiles/compi_tests.dir/solver/linear_expr_test.cc.o" "gcc" "tests/CMakeFiles/compi_tests.dir/solver/linear_expr_test.cc.o.d"
  "/root/repo/tests/solver/predicate_test.cc" "tests/CMakeFiles/compi_tests.dir/solver/predicate_test.cc.o" "gcc" "tests/CMakeFiles/compi_tests.dir/solver/predicate_test.cc.o.d"
  "/root/repo/tests/solver/propagation_property_test.cc" "tests/CMakeFiles/compi_tests.dir/solver/propagation_property_test.cc.o" "gcc" "tests/CMakeFiles/compi_tests.dir/solver/propagation_property_test.cc.o.d"
  "/root/repo/tests/solver/propagation_test.cc" "tests/CMakeFiles/compi_tests.dir/solver/propagation_test.cc.o" "gcc" "tests/CMakeFiles/compi_tests.dir/solver/propagation_test.cc.o.d"
  "/root/repo/tests/solver/solver_edge_test.cc" "tests/CMakeFiles/compi_tests.dir/solver/solver_edge_test.cc.o" "gcc" "tests/CMakeFiles/compi_tests.dir/solver/solver_edge_test.cc.o.d"
  "/root/repo/tests/solver/solver_test.cc" "tests/CMakeFiles/compi_tests.dir/solver/solver_test.cc.o" "gcc" "tests/CMakeFiles/compi_tests.dir/solver/solver_test.cc.o.d"
  "/root/repo/tests/symbolic/path_test.cc" "tests/CMakeFiles/compi_tests.dir/symbolic/path_test.cc.o" "gcc" "tests/CMakeFiles/compi_tests.dir/symbolic/path_test.cc.o.d"
  "/root/repo/tests/symbolic/sym_value_test.cc" "tests/CMakeFiles/compi_tests.dir/symbolic/sym_value_test.cc.o" "gcc" "tests/CMakeFiles/compi_tests.dir/symbolic/sym_value_test.cc.o.d"
  "/root/repo/tests/targets/imb_stats_test.cc" "tests/CMakeFiles/compi_tests.dir/targets/imb_stats_test.cc.o" "gcc" "tests/CMakeFiles/compi_tests.dir/targets/imb_stats_test.cc.o.d"
  "/root/repo/tests/targets/mini_hpl_test.cc" "tests/CMakeFiles/compi_tests.dir/targets/mini_hpl_test.cc.o" "gcc" "tests/CMakeFiles/compi_tests.dir/targets/mini_hpl_test.cc.o.d"
  "/root/repo/tests/targets/mini_imb_test.cc" "tests/CMakeFiles/compi_tests.dir/targets/mini_imb_test.cc.o" "gcc" "tests/CMakeFiles/compi_tests.dir/targets/mini_imb_test.cc.o.d"
  "/root/repo/tests/targets/mini_susy_test.cc" "tests/CMakeFiles/compi_tests.dir/targets/mini_susy_test.cc.o" "gcc" "tests/CMakeFiles/compi_tests.dir/targets/mini_susy_test.cc.o.d"
  "/root/repo/tests/targets/sanity_boundary_test.cc" "tests/CMakeFiles/compi_tests.dir/targets/sanity_boundary_test.cc.o" "gcc" "tests/CMakeFiles/compi_tests.dir/targets/sanity_boundary_test.cc.o.d"
  "/root/repo/tests/targets/susy_lattice_test.cc" "tests/CMakeFiles/compi_tests.dir/targets/susy_lattice_test.cc.o" "gcc" "tests/CMakeFiles/compi_tests.dir/targets/susy_lattice_test.cc.o.d"
  "/root/repo/tests/targets/susy_rhmc_test.cc" "tests/CMakeFiles/compi_tests.dir/targets/susy_rhmc_test.cc.o" "gcc" "tests/CMakeFiles/compi_tests.dir/targets/susy_rhmc_test.cc.o.d"
  "/root/repo/tests/targets/susy_wilson_test.cc" "tests/CMakeFiles/compi_tests.dir/targets/susy_wilson_test.cc.o" "gcc" "tests/CMakeFiles/compi_tests.dir/targets/susy_wilson_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cli/CMakeFiles/compi_cli_lib.dir/DependInfo.cmake"
  "/root/repo/build/src/targets/CMakeFiles/compi_targets.dir/DependInfo.cmake"
  "/root/repo/build/src/compi/CMakeFiles/compi_core.dir/DependInfo.cmake"
  "/root/repo/build/src/minimpi/CMakeFiles/compi_minimpi.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/compi_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/symbolic/CMakeFiles/compi_symbolic.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/compi_solver.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
