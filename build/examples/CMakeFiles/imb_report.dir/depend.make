# Empty dependencies file for imb_report.
# This may be replaced when dependencies are built.
