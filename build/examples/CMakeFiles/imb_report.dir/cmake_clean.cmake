file(REMOVE_RECURSE
  "CMakeFiles/imb_report.dir/imb_report.cpp.o"
  "CMakeFiles/imb_report.dir/imb_report.cpp.o.d"
  "imb_report"
  "imb_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imb_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
