# Empty compiler generated dependencies file for hpl_campaign.
# This may be replaced when dependencies are built.
