file(REMOVE_RECURSE
  "CMakeFiles/hpl_campaign.dir/hpl_campaign.cpp.o"
  "CMakeFiles/hpl_campaign.dir/hpl_campaign.cpp.o.d"
  "hpl_campaign"
  "hpl_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpl_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
