# Empty dependencies file for custom_target.
# This may be replaced when dependencies are built.
