file(REMOVE_RECURSE
  "CMakeFiles/custom_target.dir/custom_target.cpp.o"
  "CMakeFiles/custom_target.dir/custom_target.cpp.o.d"
  "custom_target"
  "custom_target.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_target.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
