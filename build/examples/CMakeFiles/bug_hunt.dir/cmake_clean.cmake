file(REMOVE_RECURSE
  "CMakeFiles/bug_hunt.dir/bug_hunt.cpp.o"
  "CMakeFiles/bug_hunt.dir/bug_hunt.cpp.o.d"
  "bug_hunt"
  "bug_hunt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bug_hunt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
