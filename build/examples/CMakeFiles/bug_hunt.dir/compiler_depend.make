# Empty compiler generated dependencies file for bug_hunt.
# This may be replaced when dependencies are built.
