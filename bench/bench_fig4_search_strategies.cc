// Fig. 4 — branch coverage of HPL under the search strategies.
//
// Paper: BoundedDFS (default huge bound) and BoundedDFS(100) cover 1100+
// branches; random-branch, uniform-random and CFG search stall at <= 137
// because they cannot march through HPL_pdinfo's sanity cascade in path
// order.  Reproduced here on mini-HPL: the DFS family must clear the
// cascade, the non-systematic strategies must plateau near the entry.
#include <iostream>

#include "bench/bench_util.h"
#include "compi/driver.h"
#include "targets/targets.h"

int main(int argc, char** argv) {
  using namespace compi;
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::banner(
      "Fig. 4: HPL branch coverage by search strategy",
      "DFS-family strategies pass the sanity check and cover far more "
      "branches; random/CFG strategies stall near the entry",
      args.full);

  const int iterations = args.full ? 4000 : 1000;
  const TargetInfo target = targets::make_mini_hpl_target(/*n_cap=*/64);

  struct Config {
    std::string label;
    SearchKind kind;
    int depth_bound;  // 0 = auto two-phase estimate
  };
  const Config configs[] = {
      {"BoundedDFS (auto bound)", SearchKind::kBoundedDfs, 0},
      {"BoundedDFS (bound=100)", SearchKind::kBoundedDfs, 100},
      {"BoundedDFS (bound=10)", SearchKind::kBoundedDfs, 10},
      {"RandomBranch", SearchKind::kRandomBranch, 0},
      {"UniformRandom", SearchKind::kUniformRandom, 0},
      {"CFG", SearchKind::kCfg, 0},
      {"Generational (extension)", SearchKind::kGenerational, 0},
  };

  TablePrinter table({"Strategy", "Covered", "Reachable", "Rate",
                      "Covered @25%", "Covered @50%", "Restarts"});
  bench::JsonEmitter json(args, "fig4_search_strategies");
  for (const Config& config : configs) {
    CampaignOptions opts;
    opts.seed = args.seed;
    opts.iterations = iterations;
    opts.search = config.kind;
    opts.depth_bound = config.depth_bound;
    opts.dfs_phase_iterations = iterations / 8;
    const CampaignResult result = Campaign(target, opts).run();

    const auto at = [&](double frac) {
      const std::size_t idx = static_cast<std::size_t>(
          frac * static_cast<double>(result.iterations.size()));
      return idx < result.iterations.size()
                 ? result.iterations[idx].covered_branches
                 : result.covered_branches;
    };
    table.add_row({config.label, std::to_string(result.covered_branches),
                   std::to_string(result.reachable_branches),
                   TablePrinter::pct(result.coverage_rate),
                   std::to_string(at(0.25)), std::to_string(at(0.5)),
                   std::to_string(result.restarts)});
    json.row(config.label,
             {{"covered", static_cast<double>(result.covered_branches)},
              {"reachable", static_cast<double>(result.reachable_branches)},
              {"coverage_rate", result.coverage_rate},
              {"covered_at_25pct", static_cast<double>(at(0.25))},
              {"covered_at_50pct", static_cast<double>(at(0.5))},
              {"restarts", static_cast<double>(result.restarts)},
              {"total_seconds", result.total_seconds}});
  }
  table.print(std::cout);
  return 0;
}
