// Table IV — one-way vs two-way instrumentation.
//
// Paper setup ("simulated testing"): inputs fixed to defaults, dynamic
// derivation disabled, one 10-iteration test per configuration.  Two-way
// saves 47-67% time on SUSY/HPL and keeps the non-focus log a few KB while
// one-way logs grow to hundreds of MB.
#include <chrono>
#include <iostream>

#include "bench/bench_util.h"
#include "compi/fixed_run.h"
#include "obs/metrics.h"
#include "targets/targets.h"

namespace {

using namespace compi;

struct Config {
  std::string program;
  TargetInfo target;
  std::string n_label;
  std::map<std::string, std::int64_t> inputs;
  int nprocs;
};

struct Measurement {
  double seconds = 0.0;
  /// Per-iteration wall-time distribution, not just the mean: one-way's
  /// cost shows up in the tail when non-focus ranks record heavy logs.
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  std::size_t avg_nonfocus_log_bytes = 0;
};

Measurement measure(const Config& config, bool one_way, int iterations,
                    std::uint64_t seed) {
  Measurement m;
  std::size_t log_bytes = 0, log_count = 0;
  std::vector<double> iter_ms;
  iter_ms.reserve(static_cast<std::size_t>(iterations));
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < iterations; ++i) {
    const auto it0 = std::chrono::steady_clock::now();
    FixedRunOptions opts;
    opts.nprocs = config.nprocs;
    opts.focus = 0;
    opts.one_way = one_way;
    opts.seed = seed + static_cast<std::uint64_t>(i);
    const auto result = run_fixed(config.target, config.inputs, opts);
    iter_ms.push_back(
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - it0)
            .count());
    for (int rank = 1; rank < config.nprocs; ++rank) {
      log_bytes += result.ranks[rank].log.serialize().size();
      ++log_count;
    }
  }
  m.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            t0)
                  .count();
  m.p50_ms = obs::percentile(iter_ms, 0.50);
  m.p95_ms = obs::percentile(iter_ms, 0.95);
  m.avg_nonfocus_log_bytes = log_count > 0 ? log_bytes / log_count : 0;
  return m;
}

std::string p50_p95(const Measurement& m) {
  return compi::TablePrinter::num(m.p50_ms, 1) + "/" +
         compi::TablePrinter::num(m.p95_ms, 1);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::banner(
      "Table IV: one-way vs two-way instrumentation",
      "two-way saves ~47-67% time on SUSY/HPL, 0-12% on IMB; non-focus "
      "logs shrink from MBs-100s of MBs to a few KB",
      args.full);

  const int iterations = 10;  // the paper's one 10-iteration test
  std::vector<Config> configs;
  for (int n : {2, 4}) {
    auto in = targets::mini_susy_defaults(/*nprocs=*/8, /*dim=*/n);
    in["nt"] = 8;        // divisible by 8 ranks
    in["trajecs"] = 2;
    in["nsteps"] = 2;    // multi-step path: use the FIXED build to survive
    configs.push_back({"SUSY-HMC", targets::make_mini_susy_target(10, false),
                       "N=" + std::to_string(n), in, 8});
  }
  for (int n : args.full ? std::vector<int>{300, 600}
                         : std::vector<int>{100, 200}) {
    configs.push_back({"HPL", targets::make_mini_hpl_target(n),
                       "N=" + std::to_string(n),
                       targets::mini_hpl_defaults(n), 8});
  }
  for (int n : args.full ? std::vector<int>{100, 400, 1600}
                         : std::vector<int>{100, 400}) {
    configs.push_back({"IMB-MPI1", targets::make_mini_imb_target(n),
                       "N=" + std::to_string(n),
                       targets::mini_imb_defaults(5, n), 8});
  }

  compi::TablePrinter table({"Program", "N", "1-way (s)", "2-way (s)",
                             "Saving", "1-way p50/p95 (ms)",
                             "2-way p50/p95 (ms)", "1-way log", "2-way log"});
  for (const Config& config : configs) {
    const Measurement one = measure(config, true, iterations, args.seed);
    const Measurement two = measure(config, false, iterations, args.seed);
    const double saving =
        one.seconds > 0 ? (one.seconds - two.seconds) / one.seconds : 0.0;
    table.add_row({config.program, config.n_label,
                   compi::TablePrinter::num(one.seconds, 2),
                   compi::TablePrinter::num(two.seconds, 2),
                   compi::TablePrinter::pct(saving), p50_p95(one),
                   p50_p95(two),
                   compi::TablePrinter::bytes(one.avg_nonfocus_log_bytes),
                   compi::TablePrinter::bytes(two.avg_nonfocus_log_bytes)});
  }
  table.print(std::cout);
  return 0;
}
