// Table V — constraint-set reduction under a fixed time budget.
//
// Paper: with reduction (R) COMPI reaches 84.7% / 69.6% / 69.0% average
// coverage on SUSY / HPL / IMB; the non-reduction variants (NRBound,
// NRUnl) trail by 4.6-10.6% on SUSY/HPL and tie on IMB (but take longer
// to get there).  3 repetitions per configuration.
#include <iostream>

#include "bench/bench_util.h"
#include "compi/driver.h"
#include "targets/targets.h"

namespace {

using namespace compi;

struct Stats {
  double avg = 0.0, max = 0.0;
};

Stats run_reps(const TargetInfo& target, bool reduction, int bound,
               double budget_seconds, int reps, std::uint64_t seed) {
  Stats s;
  for (int r = 0; r < reps; ++r) {
    CampaignOptions opts;
    opts.seed = seed + static_cast<std::uint64_t>(r) * 977;
    opts.iterations = 1 << 24;  // budget-bound, not iteration-bound
    opts.time_budget_seconds = budget_seconds;
    opts.dfs_phase_iterations = 60;
    opts.reduction = reduction;
    opts.depth_bound = bound;
    const CampaignResult result = Campaign(target, opts).run();
    s.avg += result.coverage_rate;
    s.max = std::max(s.max, result.coverage_rate);
  }
  s.avg /= reps;
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::banner(
      "Table V: constraint-set reduction (R vs NRBound vs NRUnl), fixed "
      "time budget",
      "R: 84.7% / 69.6% / 69.0% avg; NR variants trail on SUSY and HPL, "
      "tie on IMB",
      args.full);

  struct Row {
    std::string name;
    TargetInfo target;
    double budget;  // seconds (paper: 1.5h / 3.5h / 34min, scaled here)
    int bound;      // paper: 500 / 600 / 300
  };
  const Row rows[] = {
      {"mini-SUSY-HMC", targets::make_mini_susy_target(5, false),
       args.full ? 20.0 : 4.0, 500},
      {"mini-HPL", targets::make_mini_hpl_target(120),
       args.full ? 40.0 : 8.0, 600},
      {"mini-IMB-MPI1", targets::make_mini_imb_target(100),
       args.full ? 15.0 : 4.0, 300},
  };
  const int reps = 3;

  TablePrinter table({"Program", "R avg", "R max", "NRBound avg",
                      "NRBound max", "NRUnl avg", "NRUnl max"});
  for (const Row& row : rows) {
    const Stats r = run_reps(row.target, true, 0, row.budget, reps, args.seed);
    const Stats nrb =
        run_reps(row.target, false, row.bound, row.budget, reps, args.seed);
    const Stats nru =
        run_reps(row.target, false, 1 << 20, row.budget, reps, args.seed);
    table.add_row({row.name, TablePrinter::pct(r.avg),
                   TablePrinter::pct(r.max), TablePrinter::pct(nrb.avg),
                   TablePrinter::pct(nrb.max), TablePrinter::pct(nru.avg),
                   TablePrinter::pct(nru.max)});
  }
  table.print(std::cout);
  return 0;
}
