// Fig. 6 — HPL branch coverage and time cost at various matrix sizes.
//
// Paper: from N=200 to N=1000 the coverage stays essentially flat while
// the execution cost grows ~27x — the motivation for input capping.
// Reproduced by (a) timing fixed-input runs of mini-HPL at each N and
// (b) measuring the coverage a short campaign reaches with the cap at N.
#include <chrono>
#include <iostream>

#include "bench/bench_util.h"
#include "compi/driver.h"
#include "compi/fixed_run.h"
#include "targets/targets.h"

int main(int argc, char** argv) {
  using namespace compi;
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::banner(
      "Fig. 6: coverage and time cost vs matrix size (mini-HPL)",
      "coverage flat beyond small N; time grows superlinearly (27x from "
      "N=200 to N=1000 in the paper)",
      args.full);

  const std::vector<int> sizes = args.full
                                     ? std::vector<int>{100, 200, 300, 400,
                                                        500, 600, 700, 800,
                                                        900, 1000}
                                     : std::vector<int>{50, 100, 200, 300};
  const int reps = args.full ? 3 : 2;
  const int campaign_iters = args.full ? 800 : 250;

  TablePrinter table({"N", "Exec time (ms, avg)", "Relative",
                      "Campaign coverage", "Covered branches"});
  double base_ms = 0.0;
  for (const int n : sizes) {
    const TargetInfo target = targets::make_mini_hpl_target(/*n_cap=*/n);

    // (a) execution cost at this size, all other inputs default.
    double total_ms = 0.0;
    for (int r = 0; r < reps; ++r) {
      const auto t0 = std::chrono::steady_clock::now();
      const auto result =
          run_fixed(target, targets::mini_hpl_defaults(n), {.nprocs = 8});
      total_ms += std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
      if (result.job_outcome() != rt::Outcome::kOk) {
        std::cerr << "unexpected fault at N=" << n << ": "
                  << result.job_message() << "\n";
      }
    }
    const double avg_ms = total_ms / reps;
    if (base_ms == 0.0) base_ms = avg_ms;

    // (b) coverage of a short campaign capped at this size.
    CampaignOptions opts;
    opts.seed = args.seed;
    opts.iterations = campaign_iters;
    opts.dfs_phase_iterations = campaign_iters / 5;
    const CampaignResult cr = Campaign(target, opts).run();

    table.add_row({std::to_string(n), TablePrinter::num(avg_ms, 1),
                   TablePrinter::num(avg_ms / base_ms, 1) + "x",
                   TablePrinter::pct(cr.coverage_rate),
                   std::to_string(cr.covered_branches)});
  }
  table.print(std::cout);
  return 0;
}
