// Ablations of COMPI's design choices (beyond the paper's own tables):
//   A. conflict resolution via the local->global mapping (§III-C) on/off,
//   B. the restart-on-stuck policy threshold,
//   C. the two-phase DFS-bound estimation phase length (§II-B).
// Each ablation holds everything else at the defaults.
#include <iostream>

#include "bench/bench_util.h"
#include "compi/driver.h"
#include "targets/targets.h"

namespace {

using namespace compi;

CampaignResult run(const TargetInfo& target, CampaignOptions opts) {
  return Campaign(target, std::move(opts)).run();
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::banner("Design-choice ablations",
                "each COMPI mechanism earns its keep", args.full);

  const int iters = args.full ? 1500 : 500;

  // ---- A: conflict resolution (targets with sub-communicators) ----
  std::cout << "A. rc->global conflict resolution (mapping table, SIII-C)\n";
  {
    TablePrinter table({"Target", "With mapping", "Without (naive)"});
    for (const TargetInfo& target :
         {targets::make_mini_hpl_target(64), targets::make_mini_imb_target()}) {
      CampaignOptions opts;
      opts.seed = args.seed;
      opts.iterations = iters;
      opts.dfs_phase_iterations = iters / 5;
      const CampaignResult with = run(target, opts);
      opts.conflict_resolution = false;
      const CampaignResult without = run(target, opts);
      table.add_row({target.name,
                     std::to_string(with.covered_branches) + " (" +
                         TablePrinter::pct(with.coverage_rate) + ")",
                     std::to_string(without.covered_branches) + " (" +
                         TablePrinter::pct(without.coverage_rate) + ")"});
    }
    table.print(std::cout);
  }

  // ---- B: restart threshold ----
  std::cout << "\nB. restart-after-failures threshold (stuck recovery)\n";
  {
    TablePrinter table({"Threshold", "Covered", "Restarts", "Bugs"});
    const TargetInfo target = targets::make_mini_susy_target();
    for (int threshold : {1, 5, 25, 1000}) {
      CampaignOptions opts;
      opts.seed = args.seed;
      opts.iterations = iters;
      opts.dfs_phase_iterations = 50;
      opts.restart_after_failures = threshold;
      const CampaignResult r = run(target, opts);
      table.add_row({std::to_string(threshold),
                     std::to_string(r.covered_branches),
                     std::to_string(r.restarts),
                     std::to_string(r.bugs.size())});
    }
    table.print(std::cout);
  }

  // ---- C: DFS phase length for the bound estimate ----
  std::cout << "\nC. two-phase bound estimation: DFS phase length (SII-B)\n";
  {
    TablePrinter table(
        {"Phase-1 iterations", "Bound derived", "Covered", "Rate"});
    const TargetInfo target = targets::make_mini_hpl_target(64);
    for (int phase : {10, 50, 200, iters / 2}) {
      CampaignOptions opts;
      opts.seed = args.seed;
      opts.iterations = iters;
      opts.dfs_phase_iterations = phase;
      const CampaignResult r = run(target, opts);
      table.add_row({std::to_string(phase),
                     std::to_string(r.depth_bound_used),
                     std::to_string(r.covered_branches),
                     TablePrinter::pct(r.coverage_rate)});
    }
    table.print(std::cout);
  }
  return 0;
}
