// Table VI — COMPI framework (Fwk) vs No_Fwk vs random testing.
//
// Paper (avg coverage): SUSY 84.7% / 3.4% / 38.3%; HPL 69.4% / 58.9% /
// 2.2%; IMB 69.0% / 64.2% / 1.8%.  No_Fwk fixes focus 0 and 8 processes
// and records focus-only coverage (combined over each possible focus in
// the paper; here over focus 0, the dominant term).  Random draws all
// marked inputs, nprocs and focus uniformly within caps.  3 repetitions.
#include <iostream>
#include <thread>

#include "bench/bench_util.h"
#include "compi/driver.h"
#include "compi/random_tester.h"
#include "obs/metrics.h"
#include "targets/targets.h"

namespace {

using namespace compi;

struct Stats {
  double avg = 0.0, max = 0.0;
  /// Per-iteration execution-time percentiles (ms), pooled over all reps —
  /// the distribution behind the coverage numbers, not just the mean.
  double exec_p50_ms = 0.0, exec_p95_ms = 0.0;
  /// Iteration-to-coverage percentiles: over every branch discovered (one
  /// sample per newly covered branch, pooled over reps), the iteration by
  /// which it was in hand — the coverage_timeline.csv data as a summary.
  /// p50 = "half the final coverage came this early".
  double disc_p50 = 0.0, disc_p95 = 0.0;
};

template <typename Runner>
Stats reps_of(Runner&& runner, int reps) {
  Stats s;
  std::vector<double> exec_ms;
  std::vector<double> discovery_iters;
  for (int r = 0; r < reps; ++r) {
    const CampaignResult result = runner(r);
    s.avg += result.coverage_rate;
    s.max = std::max(s.max, result.coverage_rate);
    std::size_t prev_covered = 0;
    for (const IterationRecord& rec : result.iterations) {
      exec_ms.push_back(rec.exec_seconds * 1e3);
      for (std::size_t b = prev_covered; b < rec.covered_branches; ++b) {
        discovery_iters.push_back(static_cast<double>(rec.iteration));
      }
      prev_covered = std::max(prev_covered, rec.covered_branches);
    }
  }
  s.avg /= reps;
  s.exec_p50_ms = obs::percentile(exec_ms, 0.50);
  s.exec_p95_ms = obs::percentile(exec_ms, 0.95);
  s.disc_p50 = obs::percentile(discovery_iters, 0.50);
  s.disc_p95 = obs::percentile(discovery_iters, 0.95);
  return s;
}

std::string p50_p95(const Stats& s) {
  return TablePrinter::num(s.exec_p50_ms, 1) + "/" +
         TablePrinter::num(s.exec_p95_ms, 1);
}

std::string iters_to_cov(const Stats& s) {
  return TablePrinter::num(s.disc_p50, 0) + "/" +
         TablePrinter::num(s.disc_p95, 0);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::banner(
      "Table VI: COMPI (Fwk) vs No_Fwk vs Random, fixed time budget",
      "SUSY 84.7/3.4/38.3, HPL 69.4/58.9/2.2, IMB 69.0/64.2/1.8 (% avg)",
      args.full);

  struct Row {
    std::string name;
    TargetInfo target;
    double budget;  // seconds
  };
  const Row rows[] = {
      {"mini-SUSY-HMC", targets::make_mini_susy_target(),
       args.full ? 20.0 : 4.0},
      {"mini-HPL", targets::make_mini_hpl_target(120),
       args.full ? 40.0 : 8.0},
      {"mini-IMB-MPI1", targets::make_mini_imb_target(100),
       args.full ? 15.0 : 4.0},
  };
  const int reps = 3;

  TablePrinter table({"Program", "Fwk avg", "Fwk max", "No_Fwk avg",
                      "No_Fwk max", "Random avg", "Random max",
                      "Fwk exec p50/p95 (ms)", "No_Fwk exec p50/p95 (ms)",
                      "Fwk iters-to-cov p50/p95"});
  for (const Row& row : rows) {
    auto opts_for = [&](int rep) {
      CampaignOptions opts;
      opts.seed = args.seed + static_cast<std::uint64_t>(rep) * 977;
      opts.iterations = 1 << 24;
      opts.time_budget_seconds = row.budget;
      opts.dfs_phase_iterations = 60;
      return opts;
    };
    const Stats fwk = reps_of(
        [&](int r) { return Campaign(row.target, opts_for(r)).run(); }, reps);
    const Stats no_fwk = reps_of(
        [&](int r) {
          CampaignOptions opts = opts_for(r);
          opts.framework = false;
          return Campaign(row.target, opts).run();
        },
        reps);
    const Stats random = reps_of(
        [&](int r) { return RandomTester(row.target, opts_for(r)).run(); },
        reps);
    table.add_row({row.name, TablePrinter::pct(fwk.avg),
                   TablePrinter::pct(fwk.max), TablePrinter::pct(no_fwk.avg),
                   TablePrinter::pct(no_fwk.max),
                   TablePrinter::pct(random.avg),
                   TablePrinter::pct(random.max), p50_p95(fwk),
                   p50_p95(no_fwk), iters_to_cov(fwk)});
  }
  table.print(std::cout);

  // ---- worker scaling (the --workers engine) ----
  // Same fixed-time-budget discipline as Table VI: each row is one
  // campaign on mini-IMB with N workers sharing coverage, ledger, and the
  // solver cache; throughput is completed iterations per wall-clock
  // second.  The engine's contract is >= 2x at 4 workers (target
  // executions dominate, so the execute phase parallelizes cleanly).
  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());
  std::cout << "\nWorker scaling (mini-IMB-MPI1, fixed "
            << (args.full ? 10.0 : 3.0) << " s budget, solver cache on, "
            << cores << " core" << (cores == 1 ? "" : "s")
            << " available):\n";
  if (cores == 1) {
    std::cout << "note: single-core host — campaigns are CPU-bound, so the "
                 "scaling ceiling here is ~1.00x;\nrun on a multi-core host "
                 "to observe wall-clock speedup.\n";
  }
  TablePrinter scaling({"Workers", "Iterations", "Iters/sec", "Speedup",
                        "Coverage", "Cache hit rate"});
  const double scale_budget = args.full ? 10.0 : 3.0;
  double base_rate = 0.0;
  std::vector<int> worker_counts{1, 2, 4};
  if (args.full) worker_counts.push_back(8);
  for (int workers : worker_counts) {
    CampaignOptions opts;
    opts.seed = args.seed;
    opts.iterations = 1 << 24;
    opts.time_budget_seconds = scale_budget;
    opts.dfs_phase_iterations = 60;
    opts.workers = workers;
    opts.solver_cache_entries = 1 << 16;
    const CampaignResult result =
        Campaign(targets::make_mini_imb_target(100), opts).run();
    const double rate =
        static_cast<double>(result.iterations.size()) /
        std::max(result.total_seconds, 1e-9);
    if (workers == 1) base_rate = rate;
    const double cache_total = static_cast<double>(
        result.solver_cache_hits + result.solver_cache_misses);
    scaling.add_row(
        {std::to_string(workers),
         std::to_string(result.iterations.size()),
         TablePrinter::num(rate, 1),
         TablePrinter::num(base_rate > 0.0 ? rate / base_rate : 0.0, 2) + "x",
         TablePrinter::pct(result.coverage_rate),
         TablePrinter::pct(cache_total > 0.0
                               ? static_cast<double>(result.solver_cache_hits) /
                                     cache_total
                               : 0.0)});
  }
  scaling.print(std::cout);
  return 0;
}
