// Fig. 9 — constraint-set size distribution: reduction vs no reduction.
//
// Paper: with constraint-set reduction (R) the per-iteration sets stay
// bounded (under ~500); without it (NRBound / NRUnl) loop iterations pile
// up constraints into the thousands+.  Reproduced as a histogram of the
// per-iteration constraint-set sizes across a campaign.
#include <iostream>

#include "bench/bench_util.h"
#include "compi/driver.h"
#include "targets/targets.h"

namespace {

using namespace compi;

struct Histogram {
  // Buckets: <50, <200, <500, <2000, >=2000.
  std::array<std::size_t, 5> counts{};
  std::size_t max_size = 0;

  void add(std::size_t n) {
    max_size = std::max(max_size, n);
    if (n < 50) ++counts[0];
    else if (n < 200) ++counts[1];
    else if (n < 500) ++counts[2];
    else if (n < 2000) ++counts[3];
    else ++counts[4];
  }
  [[nodiscard]] std::size_t total() const {
    std::size_t t = 0;
    for (std::size_t c : counts) t += c;
    return t;
  }
};

Histogram run(const TargetInfo& target, bool reduction, int bound,
              int iterations, std::uint64_t seed) {
  CampaignOptions opts;
  opts.seed = seed;
  opts.iterations = iterations;
  opts.dfs_phase_iterations = iterations / 5;
  opts.reduction = reduction;
  opts.depth_bound = bound;
  const CampaignResult result = Campaign(target, opts).run();
  Histogram h;
  for (const IterationRecord& rec : result.iterations) {
    h.add(rec.constraint_set_size);
  }
  return h;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::banner(
      "Fig. 9: constraint-set size distribution (R vs NRBound vs NRUnl)",
      "with reduction sets stay small (<500); without it they reach "
      "thousands",
      args.full);

  struct Row {
    std::string name;
    TargetInfo target;
    int iterations;
  };
  const Row rows[] = {
      {"mini-SUSY-HMC", targets::make_mini_susy_target(5, false),
       args.full ? 400 : 150},
      {"mini-HPL", targets::make_mini_hpl_target(200),
       args.full ? 2000 : 700},
      {"mini-IMB-MPI1", targets::make_mini_imb_target(400),
       args.full ? 600 : 200},
  };

  for (const Row& row : rows) {
    std::cout << row.name << " (" << row.iterations << " iterations)\n";
    TablePrinter table({"Variant", "<50", "<200", "<500", "<2000", ">=2000",
                        "Max set size"});
    struct Variant {
      std::string label;
      bool reduction;
      int bound;
    };
    for (const Variant& v : {Variant{"R (reduction)", true, 0},
                             Variant{"NRBound", false, 300},
                             Variant{"NRUnl", false, 1 << 20}}) {
      const Histogram h =
          run(row.target, v.reduction, v.bound, row.iterations, args.seed);
      const double total = static_cast<double>(std::max<std::size_t>(
          h.total(), 1));
      auto pct = [&](std::size_t c) {
        return TablePrinter::pct(static_cast<double>(c) / total, 0);
      };
      table.add_row({v.label, pct(h.counts[0]), pct(h.counts[1]),
                     pct(h.counts[2]), pct(h.counts[3]), pct(h.counts[4]),
                     std::to_string(h.max_size)});
    }
    table.print(std::cout);
    std::cout << "\n";
  }
  return 0;
}
