// Fig. 8 — evaluation of input capping.
//
// Paper: bigger caps multiply the testing time (SUSY 4x from NC=5 to 10;
// HPL up to 7x from 300 to 1200; IMB 4x from 50 to 400) while coverage
// stays comparable.  Reproduced by running fixed-iteration campaigns at
// each cap and reporting time and coverage.
#include <iostream>

#include "bench/bench_util.h"
#include "compi/driver.h"
#include "targets/targets.h"

int main(int argc, char** argv) {
  using namespace compi;
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::banner(
      "Fig. 8: input capping — time and coverage vs cap",
      "bigger caps cost multiples of testing time for comparable coverage",
      args.full);

  struct Sweep {
    std::string name;
    std::vector<int> caps;
    int iterations;
    TargetInfo (*make)(int cap);
  };
  // Iteration counts follow the paper (50 for SUSY-HMC, 500 for HPL and
  // IMB-MPI1): the capped variables only grow once the search reaches the
  // solver-phase loops, which takes a few hundred iterations on HPL.
  const Sweep sweeps[] = {
      {"mini-SUSY-HMC", {5, 10}, 50,
       +[](int cap) { return targets::make_mini_susy_target(cap); }},
      {"mini-HPL", {100, 300, 600, 1200}, 500,
       +[](int cap) { return targets::make_mini_hpl_target(cap); }},
      {"mini-IMB-MPI1", {50, 100, 400}, 500,
       +[](int cap) { return targets::make_mini_imb_target(cap); }},
  };
  const int reps = args.full ? 10 : 3;
  bench::JsonEmitter json(args, "fig8_input_capping");

  for (const Sweep& sweep : sweeps) {
    std::cout << sweep.name << " (" << sweep.iterations
              << " iterations per run, " << reps << " runs per cap)\n";
    TablePrinter table({"Cap N_C", "Avg time (s)", "Max time (s)",
                        "Relative", "Avg covered", "Max covered"});
    double base = 0.0;
    for (const int cap : sweep.caps) {
      double total = 0.0, worst = 0.0;
      std::size_t cov_total = 0, cov_max = 0;
      for (int r = 0; r < reps; ++r) {
        CampaignOptions opts;
        opts.seed = args.seed + static_cast<std::uint64_t>(r) * 101;
        opts.iterations = sweep.iterations;
        opts.dfs_phase_iterations = sweep.iterations / 5;
        const CampaignResult result =
            Campaign(sweep.make(cap), opts).run();
        total += result.total_seconds;
        worst = std::max(worst, result.total_seconds);
        cov_total += result.covered_branches;
        cov_max = std::max(cov_max, result.covered_branches);
      }
      const double avg = total / reps;
      if (base == 0.0) base = avg;
      table.add_row({std::to_string(cap), TablePrinter::num(avg, 2),
                     TablePrinter::num(worst, 2),
                     TablePrinter::num(avg / base, 1) + "x",
                     std::to_string(cov_total / reps),
                     std::to_string(cov_max)});
      json.row(sweep.name + " cap=" + std::to_string(cap),
               {{"cap", static_cast<double>(cap)},
                {"avg_seconds", avg},
                {"max_seconds", worst},
                {"relative", avg / base},
                {"avg_covered", static_cast<double>(cov_total / reps)},
                {"max_covered", static_cast<double>(cov_max)}});
    }
    table.print(std::cout);
    std::cout << "\n";
  }
  return 0;
}
