// Shared plumbing for the paper-reproduction bench binaries.
//
// Every bench accepts:
//   --full     paper-scale budgets (default is a quick mode that keeps the
//              whole `for b in build/bench/*; do $b; done` sweep fast)
//   --seed=N   base RNG seed (default 1)
#pragma once

#include <cstdint>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "compi/report.h"

namespace compi::bench {

struct BenchArgs {
  bool full = false;
  std::uint64_t seed = 1;
};

inline BenchArgs parse_args(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) {
      args.full = true;
    } else if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      args.seed = std::strtoull(argv[i] + 7, nullptr, 10);
    } else {
      std::cerr << "usage: " << argv[0] << " [--full] [--seed=N]\n";
    }
  }
  return args;
}

inline void banner(const std::string& experiment, const std::string& claim,
                   bool full) {
  std::cout << "=== " << experiment << (full ? "  [--full]" : "  [quick]")
            << " ===\n"
            << "paper claim: " << claim << "\n\n";
}

}  // namespace compi::bench
