// Shared plumbing for the paper-reproduction bench binaries.
//
// Every bench accepts:
//   --full     paper-scale budgets (default is a quick mode that keeps the
//              whole `for b in build/bench/*; do $b; done` sweep fast)
//   --seed=N   base RNG seed (default 1)
//   --json[=DIR]  ALSO write the results as BENCH_<experiment>.json into
//              DIR (default ".") — one flat JSON object per file, rows as
//              nested "row_N" objects in the journal dialect, so CI can
//              archive machine-readable numbers next to the human tables
#pragma once

#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "compi/report.h"
#include "obs/journal.h"

namespace compi::bench {

struct BenchArgs {
  bool full = false;
  std::uint64_t seed = 1;
  bool json = false;
  std::string json_dir = ".";
};

inline BenchArgs parse_args(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) {
      args.full = true;
    } else if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      args.seed = std::strtoull(argv[i] + 7, nullptr, 10);
    } else if (std::strcmp(argv[i], "--json") == 0) {
      args.json = true;
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      args.json = true;
      args.json_dir = argv[i] + 7;
    } else {
      std::cerr << "usage: " << argv[0]
                << " [--full] [--seed=N] [--json[=DIR]]\n";
    }
  }
  return args;
}

inline void banner(const std::string& experiment, const std::string& claim,
                   bool full) {
  std::cout << "=== " << experiment << (full ? "  [--full]" : "  [quick]")
            << " ===\n"
            << "paper claim: " << claim << "\n\n";
}

/// Machine-readable sidecar for one bench run.  Construct with a slug
/// ("fig8_input_capping"), add one row per measured configuration, and the
/// destructor writes BENCH_<slug>.json — or nothing at all without --json,
/// so the default sweep stays write-free.
class JsonEmitter {
 public:
  JsonEmitter(const BenchArgs& args, std::string slug)
      : enabled_(args.json), full_(args.full), seed_(args.seed),
        slug_(std::move(slug)), dir_(args.json_dir) {}
  JsonEmitter(const JsonEmitter&) = delete;
  JsonEmitter& operator=(const JsonEmitter&) = delete;

  /// One result row: a series label (target, strategy, ...) plus named
  /// metric values.  No-op without --json.
  void row(const std::string& series,
           const std::map<std::string, double>& values) {
    if (!enabled_) return;
    rows_.emplace_back(series, values);
  }

  ~JsonEmitter() {
    if (!enabled_) return;
    std::string doc;
    obs::JsonWriter w(doc);
    w.field("experiment", slug_);
    w.field_bool("full", full_);
    w.field("seed", static_cast<std::int64_t>(seed_));
    w.field("rows", static_cast<std::int64_t>(rows_.size()));
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      w.begin_object("row_" + std::to_string(i));
      w.field("series", rows_[i].first);
      for (const auto& [key, value] : rows_[i].second) {
        w.field(key, value);
      }
      w.end_object();
    }
    w.finish();
    const std::string path = dir_ + "/BENCH_" + slug_ + ".json";
    std::ofstream out(path);
    if (out) {
      out << doc;
      std::cout << "json results      : " << path << "\n";
    } else {
      std::cerr << "bench: cannot write " << path << "\n";
    }
  }

 private:
  bool enabled_;
  bool full_;
  std::uint64_t seed_;
  std::string slug_;
  std::string dir_;
  std::vector<std::pair<std::string, std::map<std::string, double>>> rows_;
};

}  // namespace compi::bench
