// Micro-benchmarks (google-benchmark) for the substrate hot paths: the
// constraint solver, the concolic branch event, and MiniMPI messaging.
// These are not paper tables; they quantify the costs the cost-control
// techniques (two-way instrumentation, reduction) are managing.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>
#include <filesystem>
#include <functional>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "compi/driver.h"
#include "compi/fixed_run.h"
#include "compi/ledger.h"
#include "minimpi/launcher.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sandbox/fork_server.h"
#include "sandbox/supervisor.h"
#include "sandbox/wire.h"
#include "solver/solver.h"
#include "targets/targets.h"

namespace {

using namespace compi;

void BM_SolverChain(benchmark::State& state) {
  // x0 < x1 < ... < x_{k-1} <= 100, negate the last: a coupled chain the
  // incremental solver must re-solve wholesale.
  const int k = static_cast<int>(state.range(0));
  std::vector<solver::Predicate> preds;
  solver::Assignment prev;
  for (int i = 0; i + 1 < k; ++i) {
    preds.push_back(solver::make_lt(i, i + 1));
    prev[i] = i;
  }
  prev[k - 1] = k - 1;
  preds.push_back(solver::make_le_const(k - 1, 100).negated());
  solver::Solver s;
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.solve_incremental(preds, {}, prev));
  }
}
BENCHMARK(BM_SolverChain)->Arg(4)->Arg(16)->Arg(64);

void BM_SolverIndependent(benchmark::State& state) {
  // Many independent constraints: dependency slicing should make the
  // incremental solve O(slice), not O(set).
  const int k = static_cast<int>(state.range(0));
  std::vector<solver::Predicate> preds;
  solver::Assignment prev;
  for (int i = 0; i < k; ++i) {
    preds.push_back(solver::make_le_const(i, 50));
    prev[i] = 0;
  }
  preds.push_back(solver::make_le_const(k - 1, 50).negated());
  solver::Solver s;
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.solve_incremental(preds, {}, prev));
  }
}
BENCHMARK(BM_SolverIndependent)->Arg(16)->Arg(256)->Arg(2048);

void BM_BranchEventHeavy(benchmark::State& state) {
  rt::BranchTable table;
  table.add_site("f", "s");
  table.finalize();
  rt::VarRegistry registry;
  solver::Assignment inputs;
  rt::ContextParams params;
  params.mode = rt::Mode::kHeavy;
  params.table = &table;
  params.registry = &registry;
  params.inputs = &inputs;
  rt::RuntimeContext ctx(params);
  const sym::SymInt x = ctx.input_int("x");
  std::int64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx.branch(0, sym::SymInt(i++ % 100) < x));
  }
}
BENCHMARK(BM_BranchEventHeavy);

void BM_BranchEventLight(benchmark::State& state) {
  rt::BranchTable table;
  table.add_site("f", "s");
  table.finalize();
  rt::VarRegistry registry;
  solver::Assignment inputs;
  rt::ContextParams params;
  params.mode = rt::Mode::kLight;
  params.table = &table;
  params.registry = &registry;
  params.inputs = &inputs;
  rt::RuntimeContext ctx(params);
  const sym::SymInt x = ctx.input_int("x");
  std::int64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx.branch(0, sym::SymInt(i++ % 100) < x));
  }
}
BENCHMARK(BM_BranchEventLight);

void BM_MiniMpiPingPong(benchmark::State& state) {
  // Whole-job cost of a ping-pong of `range(0)` iterations on 2 ranks.
  const int iters = static_cast<int>(state.range(0));
  const TargetInfo target = targets::make_mini_imb_target(10'000);
  auto in = targets::mini_imb_defaults(/*benchmark=*/0, iters);
  in["msglog_min"] = 10;
  in["msglog_max"] = 10;
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_fixed(target, in, {.nprocs = 2}));
  }
}
BENCHMARK(BM_MiniMpiPingPong)->Arg(10)->Arg(100)->Unit(benchmark::kMillisecond);

void BM_MiniMpiAllreduce8(benchmark::State& state) {
  const TargetInfo target = targets::make_mini_imb_target(10'000);
  auto in = targets::mini_imb_defaults(/*benchmark=*/5, 50);
  in["npmin"] = 8;
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_fixed(target, in, {.nprocs = 8}));
  }
}
BENCHMARK(BM_MiniMpiAllreduce8)->Unit(benchmark::kMillisecond);

void BM_HplSolveScaling(benchmark::State& state) {
  // The N^3 cost curve behind Fig. 6 / input capping.
  const int n = static_cast<int>(state.range(0));
  const TargetInfo target = targets::make_mini_hpl_target(n);
  const auto in = targets::mini_hpl_defaults(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_fixed(target, in, {.nprocs = 8}));
  }
}
BENCHMARK(BM_HplSolveScaling)
    ->Arg(50)
    ->Arg(100)
    ->Arg(200)
    ->Unit(benchmark::kMillisecond);

// ---- observability overhead ----
// The claim the obs layer makes: an off-path span costs one relaxed load
// and a branch (within noise of the empty loop below), counters one
// relaxed add, and an on-path span two clock reads plus a ring store.

void BM_ObsNoop(benchmark::State& state) {
  // Empty-loop baseline the disabled-path numbers are compared against.
  std::int64_t x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(x += 1);
  }
}
BENCHMARK(BM_ObsNoop);

void BM_ObsCounterInc(benchmark::State& state) {
  obs::Counter& c =
      obs::registry().counter("bench_counter", "micro-bench counter");
  for (auto _ : state) {
    c.inc();
  }
  benchmark::DoNotOptimize(c.value());
}
BENCHMARK(BM_ObsCounterInc);

void BM_ObsHistogramObserve(benchmark::State& state) {
  obs::Histogram& h =
      obs::registry().histogram("bench_histogram", "micro-bench histogram");
  std::int64_t v = 1;
  for (auto _ : state) {
    h.observe(v = (v * 7 + 3) & 0xffff);
  }
  benchmark::DoNotOptimize(h.count());
}
BENCHMARK(BM_ObsHistogramObserve);

void BM_ObsSpanDisabled(benchmark::State& state) {
  obs::tracer().set_enabled(false);
  std::int64_t x = 0;
  for (auto _ : state) {
    obs::ObsSpan span(obs::Cat::kDriver, "bench_span", "arg", x);
    benchmark::DoNotOptimize(x += 1);
  }
}
BENCHMARK(BM_ObsSpanDisabled);

void BM_ObsSpanEnabled(benchmark::State& state) {
  obs::tracer().configure(256);
  obs::tracer().set_enabled(true);
  std::int64_t x = 0;
  for (auto _ : state) {
    obs::ObsSpan span(obs::Cat::kDriver, "bench_span", "arg", x);
    benchmark::DoNotOptimize(x += 1);
  }
  obs::tracer().set_enabled(false);
}
BENCHMARK(BM_ObsSpanEnabled);

void BM_ObsInstantDisabled(benchmark::State& state) {
  obs::tracer().set_enabled(false);
  std::int64_t x = 0;
  for (auto _ : state) {
    obs::instant(obs::Cat::kMpi, "bench_instant", "arg", x);
    benchmark::DoNotOptimize(x += 1);
  }
}
BENCHMARK(BM_ObsInstantDisabled);

void BM_ObsInstantEnabled(benchmark::State& state) {
  obs::tracer().configure(256);
  obs::tracer().set_enabled(true);
  std::int64_t x = 0;
  for (auto _ : state) {
    obs::instant(obs::Cat::kMpi, "bench_instant", "arg", x);
    benchmark::DoNotOptimize(x += 1);
  }
  obs::tracer().set_enabled(false);
}
BENCHMARK(BM_ObsInstantEnabled);

// ---- journal + ledger overhead ----
// What one introspected iteration adds on top of the campaign loop: a
// buffered JSONL event append (journal) and one attribution sweep over the
// run's rank bitmaps (ledger).  The disabled-journal number is the emit
// envelope every non-journaling campaign pays.

void BM_JournalWriteIteration(benchmark::State& state) {
  const std::filesystem::path file =
      std::filesystem::temp_directory_path() /
      ("compi_bench_journal_" + std::to_string(::getpid()) + ".jsonl");
  obs::Journal journal;
  if (!journal.open(file)) {
    state.SkipWithError("cannot open journal file");
    return;
  }
  const std::map<std::string, std::int64_t> inputs{{"x", 33}, {"y", 77}};
  int iter = 0;
  for (auto _ : state) {
    obs::JournalEvent(journal, "iteration", iter++)
        .num("nprocs", 8)
        .num("focus", 0)
        .str("outcome", "ok")
        .boolean("restart", false)
        .num("covered_branches", 120)
        .num("new_branches", 1)
        .real("exec_seconds", 0.001)
        .real("solve_seconds", 0.0002)
        .inputs(inputs);
  }
  journal.close();
  std::filesystem::remove(file);
}
BENCHMARK(BM_JournalWriteIteration);

void BM_JournalWriteDisabled(benchmark::State& state) {
  obs::Journal journal;  // never opened: every emit is an enabled() branch
  const std::map<std::string, std::int64_t> inputs{{"x", 33}, {"y", 77}};
  int iter = 0;
  for (auto _ : state) {
    obs::JournalEvent(journal, "iteration", iter++)
        .num("nprocs", 8)
        .str("outcome", "ok")
        .inputs(inputs);
  }
  benchmark::DoNotOptimize(journal.events_written());
}
BENCHMARK(BM_JournalWriteDisabled);

void BM_LedgerRecordRun(benchmark::State& state) {
  // One attribution sweep over `range(0)` ranks' bitmaps on the mini-HPL
  // table — the per-iteration ledger cost after steady state (every branch
  // already attributed, only hit counts move).
  const int nranks = static_cast<int>(state.range(0));
  const TargetInfo target = targets::make_mini_hpl_target(100);
  CoverageLedger ledger(*target.table);
  minimpi::RunResult run;
  run.ranks.resize(static_cast<std::size_t>(nranks));
  for (auto& rank : run.ranks) {
    rank.log.covered = rt::CoverageBitmap(target.table->num_branches());
    for (std::size_t b = 0; b < target.table->num_branches(); b += 2) {
      rank.log.covered.mark(static_cast<sym::BranchId>(b));
    }
  }
  const std::map<std::string, std::int64_t> inputs{{"n", 100}};
  CoverageLedger::RunContext ctx;
  ctx.nprocs = nranks;
  ctx.inputs = &inputs;
  int iter = 0;
  for (auto _ : state) {
    ctx.iteration = iter++;
    ledger.record_run(ctx, run);
  }
  benchmark::DoNotOptimize(ledger.covered_branches());
}
BENCHMARK(BM_LedgerRecordRun)->Arg(2)->Arg(8)->Arg(16);

// ---- sandbox (--isolate) overhead ----
// What one fork()ed, pipe-harvested test run costs over the same run
// launched in-process: the EXPERIMENTS.md "sandbox overhead" row.

const rt::BranchTable& sandbox_bench_table() {
  static const rt::BranchTable table = [] {
    rt::BranchTable t;
    t.add_site("bench", "gate");
    t.finalize();
    return t;
  }();
  return table;
}

minimpi::LaunchSpec sandbox_bench_spec(rt::VarRegistry& registry,
                                       const solver::Assignment& inputs) {
  minimpi::LaunchSpec spec;
  spec.nprocs = 2;
  spec.focus = 0;
  spec.registry = &registry;
  spec.inputs = &inputs;
  spec.rng_seed = 42;
  spec.timeout = std::chrono::milliseconds(5000);
  spec.program = [](rt::RuntimeContext& ctx, minimpi::Comm& world) {
    const sym::SymInt x = ctx.input_int("x");
    benchmark::DoNotOptimize(ctx.branch(0, sym::SymInt(0) < x));
    world.barrier();
  };
  return spec;
}

void BM_LaunchInProcess(benchmark::State& state) {
  rt::VarRegistry registry;
  const solver::Assignment inputs;
  const minimpi::LaunchSpec spec = sandbox_bench_spec(registry, inputs);
  for (auto _ : state) {
    benchmark::DoNotOptimize(minimpi::launch(spec, sandbox_bench_table()));
  }
}
BENCHMARK(BM_LaunchInProcess)->Unit(benchmark::kMillisecond);

void BM_LaunchSandboxed(benchmark::State& state) {
  if (!sandbox::sandbox_supported()) {
    state.SkipWithError("no fork() on this platform");
    return;
  }
  rt::VarRegistry registry;
  const solver::Assignment inputs;
  const minimpi::LaunchSpec spec = sandbox_bench_spec(registry, inputs);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sandbox::run_sandboxed(spec, sandbox_bench_table(), {}, nullptr));
  }
}
BENCHMARK(BM_LaunchSandboxed)->Unit(benchmark::kMillisecond);

void BM_LaunchForkServer(benchmark::State& state) {
  // Warm spawn: each iteration forks from the long-lived server snapshot
  // instead of re-forking this (benchmark-sized) tester process.  The
  // EXPERIMENTS.md spawn-overhead table compares this row against
  // BM_LaunchSandboxed (the cold per-iteration fork).
  if (!sandbox::sandbox_supported()) {
    state.SkipWithError("no fork() on this platform");
    return;
  }
  rt::VarRegistry registry;
  const solver::Assignment inputs;
  const minimpi::LaunchSpec spec = sandbox_bench_spec(registry, inputs);
  sandbox::ForkServer server(sandbox_bench_table(), {});
  bool warm = false;
  (void)server.run(spec, nullptr, &warm);  // pay server startup untimed
  if (!warm) {
    state.SkipWithError("fork server failed to start");
    return;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(server.run(spec, nullptr, &warm));
  }
  if (!warm) state.SkipWithError("fork server degraded to cold forks");
}
BENCHMARK(BM_LaunchForkServer)->Unit(benchmark::kMillisecond);

void BM_LaunchBatchReset(benchmark::State& state) {
  // The --batch-reset fast path: in-process execution with a coverage-sink
  // reset, zero process creation.  Identical work to BM_LaunchInProcess
  // plus the per-iteration reset the batched campaign pays.
  rt::VarRegistry registry;
  const solver::Assignment inputs;
  const minimpi::LaunchSpec spec = sandbox_bench_spec(registry, inputs);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sandbox::run_batch_reset(spec, sandbox_bench_table()));
  }
}
BENCHMARK(BM_LaunchBatchReset)->Unit(benchmark::kMillisecond);

// ---- match-scheduler (--explore-matchings) overhead ----
// What routing every receive through the central MatchScheduler costs over
// the plain mailbox path, on a wildcard fan-in job: per-receive scheduler
// bookkeeping plus the decision-trace records.

minimpi::LaunchSpec matching_bench_spec(rt::VarRegistry& registry,
                                        int fanin) {
  minimpi::LaunchSpec spec;
  spec.nprocs = fanin + 1;
  spec.focus = 0;
  spec.registry = &registry;
  spec.rng_seed = 42;
  spec.timeout = std::chrono::milliseconds(5000);
  spec.program = [](rt::RuntimeContext&, minimpi::Comm& world) {
    const int me = world.raw_rank();
    constexpr int kRounds = 16;
    if (me != 0) {
      const std::vector<int> mine{me};
      for (int i = 0; i < kRounds; ++i) {
        world.send(std::span<const int>(mine), 0, 1);
      }
    } else {
      std::vector<int> got(1);
      const int total = kRounds * (world.raw_size() - 1);
      for (int i = 0; i < total; ++i) {
        world.recv(std::span<int>(got), minimpi::kAnySource, 1);
      }
    }
    world.barrier();
  };
  return spec;
}

void BM_LaunchPlainMatching(benchmark::State& state) {
  rt::VarRegistry registry;
  const minimpi::LaunchSpec spec =
      matching_bench_spec(registry, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(minimpi::launch(spec, sandbox_bench_table()));
  }
}
BENCHMARK(BM_LaunchPlainMatching)->Arg(3)->Arg(7)->Unit(
    benchmark::kMillisecond);

void BM_LaunchMatchScheduled(benchmark::State& state) {
  rt::VarRegistry registry;
  minimpi::LaunchSpec spec =
      matching_bench_spec(registry, static_cast<int>(state.range(0)));
  spec.match_schedule = true;
  for (auto _ : state) {
    benchmark::DoNotOptimize(minimpi::launch(spec, sandbox_bench_table()));
  }
}
BENCHMARK(BM_LaunchMatchScheduled)->Arg(3)->Arg(7)->Unit(
    benchmark::kMillisecond);

// ---- control plane (--serve) overhead ----
// Two claims: rendering one /metrics scrape body is cheap enough to serve
// on every poll tick, and a campaign that is not serving pays nothing for
// the feature (the EXPERIMENTS.md serve-overhead row).  The serve-on
// campaign number includes the listening server but no clients — the
// idle-server cost a serving campaign always carries.

void BM_MetricsScrape(benchmark::State& state) {
  // A registry populated like a mid-campaign scrape: `range(0)` series
  // across counters, gauges, and histograms (histograms dominate the
  // rendered byte count with their bucket lines).
  const int series = static_cast<int>(state.range(0));
  obs::Registry reg;
  for (int i = 0; i < series; ++i) {
    const std::string suffix = std::to_string(i);
    obs::Counter& c =
        reg.counter("bench_scrape_total_" + suffix, "scrape bench counter");
    c.inc(i);
    reg.gauge("bench_scrape_depth_" + suffix, "scrape bench gauge").set(i);
    obs::Histogram& h =
        reg.histogram("bench_scrape_us_" + suffix, "scrape bench histogram");
    for (int v = 1; v < 1024; v *= 3) h.observe(v);
  }
  for (auto _ : state) {
    std::ostringstream os;
    reg.write_prometheus(os);
    benchmark::DoNotOptimize(os.str().size());
  }
}
BENCHMARK(BM_MetricsScrape)->Arg(8)->Arg(32);

CampaignOptions serve_bench_opts() {
  CampaignOptions opts;
  opts.seed = 7;
  opts.iterations = 40;
  opts.initial_nprocs = 2;
  opts.max_procs = 2;
  opts.dfs_phase_iterations = 20;
  opts.checkpoint_interval = 0;
  return opts;
}

void BM_CampaignServeOff(benchmark::State& state) {
  const TargetInfo target = targets::make_mini_imb_target(4);
  const CampaignOptions opts = serve_bench_opts();
  for (auto _ : state) {
    benchmark::DoNotOptimize(Campaign(target, opts).run());
  }
}
BENCHMARK(BM_CampaignServeOff)->Unit(benchmark::kMillisecond);

void BM_CampaignServeOn(benchmark::State& state) {
  // Same campaign with the control plane bound to an ephemeral port (no
  // scraping clients).  On stub builds (obs-off preset) the bind fails and
  // this measures the same serve-less loop — the compiled-out claim.
  const TargetInfo target = targets::make_mini_imb_target(4);
  CampaignOptions opts = serve_bench_opts();
  opts.serve_port = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Campaign(target, opts).run());
  }
}
BENCHMARK(BM_CampaignServeOn)->Unit(benchmark::kMillisecond);

void BM_WireEncodeDecode(benchmark::State& state) {
  // Serialization share of the sandbox overhead, without the fork.
  rt::VarRegistry registry;
  const solver::Assignment inputs;
  const minimpi::LaunchSpec spec = sandbox_bench_spec(registry, inputs);
  const minimpi::RunResult run = minimpi::launch(spec, sandbox_bench_table());
  for (auto _ : state) {
    minimpi::RunResult decoded;
    benchmark::DoNotOptimize(
        sandbox::decode_run_result(sandbox::encode_run_result(run), decoded));
  }
}
BENCHMARK(BM_WireEncodeDecode);

// ---- --json sidecar: the spawn-engine trajectory ----
// Cold fork vs warm spawn vs batch reset, measured the way a campaign
// experiences them: the cold fork copies the CAMPAIGN process (here padded
// with a dirty heap standing in for solver caches, ledger, and journal
// buffers accumulated mid-campaign), while the fork server's grandchildren
// fork from the lean snapshot taken before that heap existed.

double seconds_per_run(int runs, const std::function<void()>& body) {
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < runs; ++i) body();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count() / runs;
}

void write_spawn_sidecar(const compi::bench::BenchArgs& args) {
  compi::bench::JsonEmitter json(args, "micro_spawn");
  if (!sandbox::sandbox_supported()) {
    json.row("unsupported", {{"sandbox_supported", 0.0}});
    return;
  }
  const int runs = args.full ? 400 : 100;

  rt::VarRegistry registry;
  const solver::Assignment inputs;
  const minimpi::LaunchSpec spec = sandbox_bench_spec(registry, inputs);

  // Snapshot the server FIRST, then dirty a campaign-sized heap: grandchild
  // forks keep paying for the lean snapshot, cold forks pay for the heap.
  sandbox::ForkServer server(sandbox_bench_table(), {});
  bool warm = false;
  (void)server.run(spec, nullptr, &warm);
  std::vector<char> campaign_heap;
  if (warm) {
    campaign_heap.resize(192u << 20);
    for (std::size_t i = 0; i < campaign_heap.size(); i += 4096) {
      campaign_heap[i] = static_cast<char>(i);
    }
  }

  const double cold = seconds_per_run(runs, [&] {
    benchmark::DoNotOptimize(
        sandbox::run_sandboxed(spec, sandbox_bench_table(), {}, nullptr));
  });
  json.row("cold_fork", {{"seconds_per_run", cold},
                         {"runs", static_cast<double>(runs)}});

  if (warm) {
    const double warm_s = seconds_per_run(runs, [&] {
      benchmark::DoNotOptimize(server.run(spec, nullptr, &warm));
    });
    json.row("warm_spawn", {{"seconds_per_run", warm_s},
                            {"runs", static_cast<double>(runs)},
                            {"speedup_vs_cold", cold / warm_s},
                            {"degraded", warm ? 0.0 : 1.0}});
  }

  const double batch = seconds_per_run(runs, [&] {
    benchmark::DoNotOptimize(
        sandbox::run_batch_reset(spec, sandbox_bench_table()));
  });
  json.row("batch_reset", {{"seconds_per_run", batch},
                           {"runs", static_cast<double>(runs)},
                           {"speedup_vs_cold", cold / batch}});
}

}  // namespace

int main(int argc, char** argv) {
  // Peel the compi sweep flags (--json[=DIR], --full, --seed=N) off the
  // command line before google-benchmark parses it; everything else is
  // google-benchmark's.
  compi::bench::BenchArgs args;
  std::vector<char*> gb_argv;
  for (int i = 0; i < argc; ++i) {
    if (i > 0 && (std::strcmp(argv[i], "--json") == 0 ||
                  std::strncmp(argv[i], "--json=", 7) == 0 ||
                  std::strcmp(argv[i], "--full") == 0 ||
                  std::strncmp(argv[i], "--seed=", 7) == 0)) {
      char* own[] = {argv[0], argv[i]};
      const compi::bench::BenchArgs one = compi::bench::parse_args(2, own);
      args.json = args.json || one.json;
      args.full = args.full || one.full;
      if (one.seed != 1) args.seed = one.seed;
      if (one.json_dir != ".") args.json_dir = one.json_dir;
      continue;
    }
    gb_argv.push_back(argv[i]);
  }
  int gb_argc = static_cast<int>(gb_argv.size());
  benchmark::Initialize(&gb_argc, gb_argv.data());
  if (benchmark::ReportUnrecognizedArguments(gb_argc, gb_argv.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (args.json) write_spawn_sidecar(args);
  return 0;
}
