// §VI-A — the four bugs COMPI uncovered in SUSY-HMC.
//
// Runs a COMPI campaign on mini-SUSY-HMC, reports each discovered bug with
// its error-inducing inputs, then *replays* the FPE trigger at 1/2/3/4
// processes to confirm the paper's observation that it manifests with 2 or
// 4 processes but not with 1 or 3.  Finally re-tests the fixed build.
#include <iostream>

#include "bench/bench_util.h"
#include "compi/driver.h"
#include "compi/fixed_run.h"
#include "targets/targets.h"

int main(int argc, char** argv) {
  using namespace compi;
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::banner(
      "SVI-A: bugs uncovered in SUSY-HMC",
      "three wrong-sizeof malloc segfaults + one division-by-zero that "
      "needs 2 or 4 processes",
      args.full);

  const TargetInfo buggy = targets::make_mini_susy_target();
  CampaignOptions opts;
  opts.seed = args.seed;
  opts.iterations = args.full ? 1500 : 500;
  opts.dfs_phase_iterations = 50;

  const CampaignResult result = Campaign(buggy, opts).run();
  std::cout << "campaign: " << result.iterations.size() << " iterations, "
            << TablePrinter::pct(result.coverage_rate) << " coverage\n\n";

  TablePrinter table({"#", "Kind", "Message", "First iter", "nprocs",
                      "Occurrences"});
  int i = 1;
  for (const BugRecord& bug : result.bugs) {
    table.add_row({std::to_string(i++), rt::to_string(bug.outcome),
                   bug.message.substr(0, 48), std::to_string(bug.first_iteration),
                   std::to_string(bug.nprocs),
                   std::to_string(bug.occurrences)});
  }
  table.print(std::cout);

  // Replay the FPE trigger across process counts (paper: "it manifests
  // with 2 or 4 processes but it does not occur with 1 or 3").
  std::cout << "\nFPE replay (nt = even multiple of nprocs):\n";
  TablePrinter replay({"nprocs", "outcome (buggy)", "outcome (fixed)"});
  const TargetInfo fixed = targets::make_mini_susy_target(5, false);
  for (int np : {1, 2, 3, 4}) {
    auto in = targets::mini_susy_defaults(np);
    in["nt"] = np * 2;  // even and divisible
    const auto b = run_fixed(buggy, in, {.nprocs = np});
    const auto f = run_fixed(fixed, in, {.nprocs = np});
    replay.add_row({std::to_string(np), rt::to_string(b.job_outcome()),
                    rt::to_string(f.job_outcome())});
  }
  replay.print(std::cout);

  // Post-fix retest: the fixed build must be bug-free under the same
  // campaign (the "fix and continue testing" workflow).
  const CampaignResult clean = Campaign(fixed, opts).run();
  std::cout << "\nfixed build campaign: " << clean.bugs.size()
            << " bugs found (expected 0), coverage "
            << TablePrinter::pct(clean.coverage_rate) << "\n";

  // Detection under environment noise: the same hunt with injected message
  // drops.  Retry/backoff absorbs the induced timeouts and the confirmation
  // replay separates real bugs (reproduce without chaos) from flaky ones.
  std::cout << "\ncampaign under injected message-drop noise:\n";
  TablePrinter noise({"drop rate", "bugs", "flaky", "retries", "coverage"});
  for (const double rate : {0.0, 0.05, 0.2}) {
    CampaignOptions noisy = opts;
    noisy.iterations = args.full ? 500 : 150;
    noisy.chaos.seed = args.seed + 1;
    noisy.chaos.drop_rate = rate;
    noisy.retry_max = 2;
    noisy.test_timeout = std::chrono::milliseconds(500);
    const CampaignResult r = Campaign(buggy, noisy).run();
    std::size_t flaky = 0;
    for (const BugRecord& bug : r.bugs) flaky += bug.flaky ? 1 : 0;
    noise.add_row({TablePrinter::num(rate, 3), std::to_string(r.bugs.size()),
                   std::to_string(flaky),
                   std::to_string(r.transient_retries),
                   TablePrinter::pct(r.coverage_rate)});
  }
  noise.print(std::cout);
  return 0;
}
