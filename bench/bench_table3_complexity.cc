// Table III — complexity of the target programs.
//
// Prints, per target: the SLOC of this reproduction's module, the paper
// program's SLOC (SLOCCount), total branches from the static table, and the
// reachable-branch estimate obtained the way the paper does it — summing
// the branches of every function encountered during a short testing run.
#include <filesystem>
#include <fstream>
#include <iostream>

#include "bench/bench_util.h"
#include "compi/driver.h"
#include "targets/targets.h"

namespace {

namespace fs = std::filesystem;

/// Counts non-blank source lines under a directory (SLOCCount-lite).
int count_sloc(const fs::path& dir) {
  if (!fs::exists(dir)) return -1;
  int lines = 0;
  for (const auto& entry : fs::recursive_directory_iterator(dir)) {
    const auto ext = entry.path().extension();
    if (ext != ".cc" && ext != ".h") continue;
    std::ifstream in(entry.path());
    std::string line;
    while (std::getline(in, line)) {
      if (line.find_first_not_of(" \t\r") != std::string::npos) ++lines;
    }
  }
  return lines;
}

fs::path target_source_dir(const std::string& subdir) {
#ifdef COMPI_SOURCE_DIR
  return fs::path(COMPI_SOURCE_DIR) / "src" / "targets" / subdir;
#else
  return fs::path("src") / "targets" / subdir;
#endif
}

}  // namespace

int main(int argc, char** argv) {
  using namespace compi;
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::banner("Table III: complexity of target programs",
                "SUSY-HMC 19201/2870/2030, HPL 15699/3754/3468, "
                "IMB-MPI1 7092/1290/1114 (SLOC / total / reachable)",
                args.full);

  struct Row {
    TargetInfo target;
    std::string dir;
    int paper_total, paper_reachable;
  };
  const Row rows[] = {
      {targets::make_mini_susy_target(), "mini_susy", 2870, 2030},
      {targets::make_mini_hpl_target(64), "mini_hpl", 3754, 3468},
      {targets::make_mini_imb_target(), "mini_imb", 1290, 1114},
  };

  TablePrinter table({"Program", "SLOC (this repo)", "SLOC (paper)",
                      "Total branches", "Reachable (measured)",
                      "Paper total", "Paper reachable"});
  for (const Row& row : rows) {
    // Reachable estimate: functions encountered during a short campaign.
    CampaignOptions opts;
    opts.seed = args.seed;
    opts.iterations = args.full ? 600 : 200;
    opts.dfs_phase_iterations = args.full ? 150 : 60;
    const CampaignResult result = Campaign(row.target, opts).run();

    const int sloc = count_sloc(target_source_dir(row.dir));
    table.add_row({row.target.name,
                   sloc >= 0 ? std::to_string(sloc) : "n/a",
                   std::to_string(row.target.paper_sloc),
                   std::to_string(row.target.table->num_branches()),
                   std::to_string(result.reachable_branches),
                   std::to_string(row.paper_total),
                   std::to_string(row.paper_reachable)});
  }
  table.print(std::cout);
  std::cout << "\nNote: this reproduction's targets are deliberately "
               "small-scale analogs;\nthe branch-space *structure* (deep "
               "sanity cascade, rank/size branches,\nloop-heavy solvers) is "
               "what the experiments depend on, not the raw counts.\n";
  return 0;
}
